"""The §6 alternative design: distributed D̂ bricks fetched on demand.

The paper chose to replicate D̂ on every node "because we wanted to reduce
the communication costs.  The alternative is to implement a shared virtual
memory where 3D bricks of the electron density or its DFT are brought on
demand in each node when they are needed" (§6, citing their ref [6]).

This module reproduces that design point quantitatively: the transform is
partitioned into cubic bricks owned round-robin by ranks; a slice request
touches a set of bricks, misses are fetched (charged at α–β cost) into a
per-rank LRU cache.  :func:`compare_replication_vs_bricks` runs a realistic
orientation-search request stream through the cache simulation and reports
the §6 tradeoff: memory per node vs added communication time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.fourier.slicing import slice_coordinates
from repro.geometry.euler import Orientation, random_orientations
from repro.parallel.machine import MachineSpec, SP2_LIKE
from repro.utils import default_rng

__all__ = ["BrickStore", "BrickAccessStats", "compare_replication_vs_bricks"]


@dataclass
class BrickAccessStats:
    """Counters of one simulated request stream."""

    requests: int = 0
    brick_touches: int = 0
    hits: int = 0
    misses: int = 0
    remote_fetches: int = 0
    local_touches: int = 0
    comm_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.brick_touches if self.brick_touches else 0.0


class BrickStore:
    """Per-rank view of a brick-partitioned transform with an LRU cache.

    Parameters
    ----------
    volume_size:
        Side of the (oversampled) transform lattice.
    brick_size:
        Cubic brick edge in voxels.
    n_ranks, rank:
        Cluster geometry; bricks are owned round-robin by linear index.
    cache_bricks:
        LRU capacity in bricks (local bricks are always free to access).
    machine:
        Cost model for remote fetches.
    """

    def __init__(
        self,
        volume_size: int,
        brick_size: int = 8,
        n_ranks: int = 16,
        rank: int = 0,
        cache_bricks: int = 64,
        machine: MachineSpec = SP2_LIKE,
    ) -> None:
        if volume_size <= 0 or brick_size <= 0:
            raise ValueError("sizes must be positive")
        if not 0 <= rank < n_ranks:
            raise ValueError("rank out of range")
        self.volume_size = volume_size
        self.brick_size = brick_size
        self.n_ranks = n_ranks
        self.rank = rank
        self.cache_bricks = cache_bricks
        self.machine = machine
        self.bricks_per_axis = int(np.ceil(volume_size / brick_size))
        self.n_bricks = self.bricks_per_axis**3
        self._cache: OrderedDict[int, bool] = OrderedDict()
        self.stats = BrickAccessStats()

    # -- geometry -----------------------------------------------------------
    def owner_of(self, brick_id: int) -> int:
        return brick_id % self.n_ranks

    def brick_bytes(self) -> int:
        return self.brick_size**3 * 16  # complex128

    def bricks_for_slice(self, orientation: Orientation, out_size: int) -> np.ndarray:
        """Distinct brick ids touched by one central-slice extraction.

        Uses the true slice coordinates (including the ±1 trilinear
        neighbourhood) so the count is what the real gather would touch.
        """
        coords = slice_coordinates(out_size, orientation.matrix(), volume_size=self.volume_size)
        pts = coords.reshape(-1, 3)
        ids = set()
        for corner in ((0, 0, 0), (1, 1, 1)):
            idx = np.floor(pts).astype(np.int64) + np.array(corner)
            np.clip(idx, 0, self.volume_size - 1, out=idx)
            b = idx // self.brick_size
            lin = (b[:, 0] * self.bricks_per_axis + b[:, 1]) * self.bricks_per_axis + b[:, 2]
            ids.update(np.unique(lin).tolist())
        return np.fromiter(ids, dtype=np.int64)

    # -- the cache ------------------------------------------------------------
    def access_slice(self, orientation: Orientation, out_size: int) -> int:
        """Simulate the brick traffic of one slice extraction.

        Returns the number of remote fetches incurred.
        """
        bricks = self.bricks_for_slice(orientation, out_size)
        self.stats.requests += 1
        fetches = 0
        for b in bricks.tolist():
            self.stats.brick_touches += 1
            if self.owner_of(b) == self.rank:
                self.stats.local_touches += 1
                continue
            if b in self._cache:
                self._cache.move_to_end(b)
                self.stats.hits += 1
                continue
            self.stats.misses += 1
            self.stats.remote_fetches += 1
            self.stats.comm_seconds += self.machine.message_time(self.brick_bytes())
            fetches += 1
            self._cache[b] = True
            if len(self._cache) > self.cache_bricks:
                self._cache.popitem(last=False)
        return fetches

    def memory_bytes(self) -> int:
        """Resident bytes: owned bricks + cache capacity."""
        owned = (self.n_bricks + self.n_ranks - 1 - self.rank) // self.n_ranks
        return (owned + self.cache_bricks) * self.brick_bytes()


def compare_replication_vs_bricks(
    volume_size: int = 64,
    out_size: int = 32,
    n_windows: int = 20,
    window_candidates: int = 27,
    window_step_deg: float = 1.0,
    brick_size: int = 8,
    n_ranks: int = 16,
    cache_bricks: int = 64,
    machine: MachineSpec = SP2_LIKE,
    seed: int = 0,
) -> dict[str, float]:
    """Run a realistic search request stream through the brick cache.

    The stream mimics the refinement inner loop: ``n_windows`` random view
    orientations, each generating ``window_candidates`` slice requests in a
    tight angular window (high brick locality within a window, low across
    windows).  Returns the §6 tradeoff numbers for one rank.
    """
    rng = default_rng(seed)
    store = BrickStore(
        volume_size, brick_size=brick_size, n_ranks=n_ranks, cache_bricks=cache_bricks,
        machine=machine,
    )
    centers = random_orientations(n_windows, seed=rng)
    for center in centers:
        for _ in range(window_candidates):
            jitter = Orientation(
                center.theta + float(rng.normal(0, window_step_deg)),
                center.phi + float(rng.normal(0, window_step_deg)),
                center.omega + float(rng.normal(0, window_step_deg)),
            )
            store.access_slice(jitter, out_size)

    replicated_bytes = volume_size**3 * 16
    return {
        "brick_memory_bytes": float(store.memory_bytes()),
        "replicated_memory_bytes": float(replicated_bytes),
        "memory_ratio": replicated_bytes / store.memory_bytes(),
        "hit_rate": store.stats.hit_rate,
        "comm_seconds": store.stats.comm_seconds,
        "comm_seconds_replicated": 0.0,
        "remote_fetches": float(store.stats.remote_fetches),
        "requests": float(store.stats.requests),
    }
