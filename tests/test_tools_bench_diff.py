"""tools/bench_diff.py: benchmark trajectory diffing for CI.

The tool compares two BENCH_*.json snapshots (files or git revisions) and
classifies numeric moves by each metric's good direction; True→False flips
of boolean gates are always regressions.  These tests pin the direction
table, the flattening (scenario lists re-keyed by name), and the
``--fail-on-regression`` exit contract.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import bench_diff  # noqa: E402


def test_direction_table():
    assert bench_diff.direction("k.restricted_seconds") == "lower"
    assert bench_diff.direction("k.median_angular_error_deg") == "lower"
    assert bench_diff.direction("k.speedup") == "higher"
    assert bench_diff.direction("k.candidate_eval_reduction") == "higher"
    assert bench_diff.direction("k.memo_hit_rate") == "higher"
    assert bench_diff.direction("engine_fingerprint") == "neutral"
    assert bench_diff.direction("k.size") == "neutral"


def test_flatten_rekeys_scenario_lists_by_name():
    payload = {
        "scenarios": [
            {"name": "icos", "metrics": {"median_angular_error_deg": 3.0}},
            {"name": "clean", "metrics": {"median_angular_error_deg": 2.0}},
        ]
    }
    flat = bench_diff.flatten(payload)
    assert flat["scenarios.icos.metrics.median_angular_error_deg"] == 3.0
    assert flat["scenarios.clean.metrics.median_angular_error_deg"] == 2.0


def test_diff_classifies_moves():
    old = {
        "k": {"speedup": 5.0, "seconds": 2.0, "identical_results": True},
        "fp": "a",
    }
    new = {
        "k": {"speedup": 3.0, "seconds": 1.0, "identical_results": False},
        "fp": "b",
        "extra": 1,
    }
    lines, regressions = bench_diff.diff(old, new, threshold_pct=10.0)
    text = "\n".join(lines)
    assert "+ extra = 1" in text
    assert "k.seconds: 2.0 -> 1.0" in text  # improvement, not flagged
    assert len(regressions) == 2  # speedup -40% and the boolean flip
    assert any("speedup" in r for r in regressions)
    assert any("identical_results" in r for r in regressions)
    # under a huge threshold only the boolean flip remains
    _, loose = bench_diff.diff(old, new, threshold_pct=50.0)
    assert len(loose) == 1


def test_diff_threshold_suppresses_noise():
    old = {"k": {"seconds": 2.0}}
    new = {"k": {"seconds": 2.1}}  # +5%, inside the default 10% slack
    _, regressions = bench_diff.diff(old, new, threshold_pct=10.0)
    assert regressions == []
    _, strict = bench_diff.diff(old, new, threshold_pct=1.0)
    assert len(strict) == 1


def test_diff_exclude_drops_matching_paths():
    """The CI gate's ``--exclude .timing.`` must silence wall-clock noise."""
    old = {"s": [{"name": "clean", "timing": {"wall_seconds": 1.0}, "speedup": 5.0}]}
    new = {"s": [{"name": "clean", "timing": {"wall_seconds": 9.0}, "speedup": 1.0}]}
    lines, regressions = bench_diff.diff(old, new, 10.0, exclude=(".timing.",))
    assert not any("wall_seconds" in line for line in lines)
    assert len(regressions) == 1  # the speedup drop still fails
    # without the exclusion, the timing move is at least reported
    lines, _ = bench_diff.diff(old, new, 10.0)
    assert any("wall_seconds" in line for line in lines)


def test_main_exclude_flag(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps({"k": {"timing": {"wall_seconds": 1.0}}}))
    b.write_text(json.dumps({"k": {"timing": {"wall_seconds": 9.0}}}))
    assert bench_diff.main([str(a), str(b), "--fail-on-regression"]) == 1
    assert (
        bench_diff.main(
            [str(a), str(b), "--fail-on-regression", "--exclude", ".timing."]
        )
        == 0
    )


def test_main_exit_codes(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps({"k": {"speedup": 5.0}}))
    b.write_text(json.dumps({"k": {"speedup": 1.0}}))
    # informational mode never fails
    assert bench_diff.main([str(a), str(b)]) == 0
    assert bench_diff.main([str(a), str(b), "--fail-on-regression"]) == 1
    assert bench_diff.main([str(a), str(a), "--fail-on-regression"]) == 0


def test_load_side_from_git_revision():
    """HEAD:BENCH_kernels.json must load through git show; a bogus spec
    dies with a clear message instead of a stack trace."""
    payload = bench_diff.load_side("HEAD", "BENCH_kernels.json")
    assert "engine_fingerprint" in payload
    with pytest.raises(SystemExit, match="neither a file nor a git revision"):
        bench_diff.load_side("no-such-rev", "BENCH_kernels.json")


def test_cli_entrypoint_runs():
    proc = subprocess.run(
        [sys.executable, str(TOOLS / "bench_diff.py"), "HEAD", "HEAD"],
        capture_output=True,
        text=True,
        cwd=TOOLS.parent,
    )
    assert proc.returncode == 0
    assert "bench_diff" in proc.stdout
