"""E9 — parallel performance: speedup vs processor count + §6 memory tradeoff.

The paper ran on 16 processors of an SP2 and chose to replicate D̂ on every
node "to reduce the communication costs" (§6).  We regenerate (a) the
model speedup curve at paper scale, (b) a measured speedup on the simulated
cluster at mini scale (virtual-clock totals), and (c) the replicated-vs-
bricked memory figures behind the §6 design discussion.
"""

import numpy as np
import pytest

from repro.parallel import SINDBIS_WORKLOAD, parallel_refine
from repro.pipeline import MiniWorkload, format_table
from repro.pipeline.datasets import make_dataset, phantom_for
from repro.pipeline.config import mini_schedule
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel


def test_model_speedup_paper_scale(benchmark, calibrated_model, save_artifact):
    counts = [1, 2, 4, 8, 16, 32, 64]
    rows = benchmark.pedantic(
        lambda: calibrated_model.speedup_curve(SINDBIS_WORKLOAD, counts), rounds=1, iterations=1
    )
    speedups = [s for _, _, s in rows]
    assert speedups[0] == pytest.approx(1.0)
    # near-linear through the paper's P=16
    assert speedups[4] > 13.0
    # efficiency decays monotonically as communication/I/O stops scaling
    effs = [s / p for p, _, s in rows]
    assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    mem_rep = calibrated_model.memory_per_node_bytes(331, replicate=True)
    mem_brick = calibrated_model.memory_per_node_bytes(331, replicate=False, n_procs=16)
    table = format_table(
        ["P", "total (s)", "speedup", "efficiency"],
        [[p, f"{t:,.0f}", f"{s:.2f}", f"{s / p:.3f}"] for p, t, s in rows],
        title="Speedup at paper scale (Sindbis workload, SP2-like model)",
    )
    table += (
        f"\n\nsec. 6 memory per node (l=331): replicated D-hat {mem_rep / 1e6:.0f} MB"
        f" vs distributed bricks {mem_brick / 1e6:.0f} MB (P=16)"
        "\npaper: replication chosen to minimize communication; nodes had 2 GB"
    )
    save_artifact("scalability.txt", table)


def test_view_scheduling_policies(benchmark, save_artifact):
    """§4/§5 follow-on: the m/P block distribution vs cost-aware policies.

    Sliding windows make per-view costs non-uniform (§5); when the
    expensive views cluster (e.g. views from one noisy micrograph), the
    paper's static blocks leave ranks idle.  Quantified with the three
    policies at paper-like scale."""
    from repro.parallel import (
        imbalance_factor,
        lpt_makespan,
        static_block_makespan,
        work_stealing_makespan,
    )
    from repro.utils import default_rng

    def run():
        rng = default_rng(0)
        m, p = 7917, 16
        costs = np.ones(m)
        # ~15% of views slide (the paper saw sliding at the fine levels);
        # clustered by micrograph: contiguous runs of 120 views
        for start in range(0, m, 800):
            costs[start : start + 120] *= 15.0 / 9.0
        return {
            "static (paper)": static_block_makespan(costs, p),
            "LPT (cost-aware)": lpt_makespan(costs, p),
            "self-scheduling": work_stealing_makespan(costs, p),
            "_imbalance_static": imbalance_factor(costs, p, "static"),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out["LPT (cost-aware)"] <= out["static (paper)"] + 1e-9
    assert out["self-scheduling"] <= out["static (paper)"] + 1e-9

    table = format_table(
        ["policy", "makespan (relative cost units)", "vs static"],
        [
            [k, f"{v:,.1f}", f"{v / out['static (paper)']:.3f}"]
            for k, v in out.items() if not k.startswith("_")
        ],
        title="View-scheduling policies under clustered sliding (m=7917, P=16)",
    )
    table += f"\n\nstatic imbalance factor {out['_imbalance_static']:.3f} (1.0 = ideal)"
    save_artifact("scheduling_policies.txt", table)


def test_measured_virtual_speedup(benchmark, save_artifact):
    """The simulated cluster's virtual clock must show real speedup too."""
    wl = MiniWorkload("scal", "sindbis", size=32, n_views=16, snr=np.inf, perturbation_deg=1.0)
    views = make_dataset(wl)
    density = phantom_for(wl.kind, wl.size)
    sched = MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=2),))

    def run_all():
        totals = {}
        for p in (1, 2, 4, 8):
            report = parallel_refine(views, density, n_ranks=p, schedule=sched, r_max=12)
            totals[p] = report.simulated_total_seconds
        return totals

    totals = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup_8 = totals[1] / totals[8]
    assert speedup_8 > 3.0  # comfortably parallel even at mini scale

    table = format_table(
        ["P", "virtual seconds", "speedup"],
        [[p, f"{t:.3f}", f"{totals[1] / t:.2f}"] for p, t in sorted(totals.items())],
        title="Measured virtual-clock speedup (mini workload, simulated SP2)",
    )
    save_artifact("scalability_measured.txt", table)
