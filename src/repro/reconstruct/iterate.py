"""The refine ↔ reconstruct iteration (steps B and C alternated).

§3: "Steps B and C are executed iteratively until the 3D electron density
map cannot be further improved at a given resolution; then the resolution
is increased gradually."  :func:`structure_determination_loop` runs that
outer loop on a view set: each iteration refines orientations against the
current map, rebuilds the map from the refined orientations, and measures
the odd/even resolution; the loop stops when the resolution estimate stops
improving (or after ``max_iterations``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.density.map import DensityMap
from repro.engine.config import EngineConfig, ScheduleConfig
from repro.geometry.euler import Orientation
from repro.imaging.simulate import SimulatedViews
from repro.reconstruct.direct_fourier import reconstruct_from_views
from repro.reconstruct.resolution import correlation_curve
from repro.refine.multires import MultiResolutionSchedule
from repro.refine.refiner import OrientationRefiner

__all__ = ["IterationRecord", "structure_determination_loop"]


@dataclass
class IterationRecord:
    """One outer iteration's outcome."""

    iteration: int
    orientations: list[Orientation]
    density: DensityMap
    resolution_angstrom: float
    mean_distance: float


def structure_determination_loop(
    views: SimulatedViews,
    initial_map: DensityMap,
    schedule: MultiResolutionSchedule | None = None,
    max_iterations: int = 3,
    r_max: float | None = None,
    pad_factor: int = 2,
    min_improvement_angstrom: float = 0.0,
    refine_centers: bool = True,
    config: EngineConfig | None = None,
) -> list[IterationRecord]:
    """Alternate orientation refinement and reconstruction.

    Returns the per-iteration history (orientations, map, odd/even
    resolution).  The initial map may come from a previous pass, from the
    baseline method, or from a low-pass-filtered ground truth in synthetic
    studies.

    ``config`` configures the whole loop as one solver — schedule, kernel,
    matching knobs and backend all come from the
    :class:`~repro.engine.config.EngineConfig`; the individual kwargs are
    the deprecation shim and are folded into an equivalent config when it
    is absent.  ``schedule``/``r_max``/``pad_factor``/``refine_centers``
    kwargs are ignored when ``config`` is given.
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if config is None:
        # deprecation shim: scattered kwargs → one validated config
        config = EngineConfig(
            schedule=(
                ScheduleConfig()
                if schedule is None
                else ScheduleConfig.from_schedule(schedule)
            ),
            r_max=None if r_max is None else float(r_max),
            refine_centers=bool(refine_centers),
            pad_factor=int(pad_factor),
        )
    if config.checkpoint.path is not None:
        # Level-granular checkpoints identify *one* refinement run; the
        # outer loop runs several against changing maps, so a shared path
        # would make iteration 2 resume from iteration 1's checkpoint.
        raise ValueError(
            "structure_determination_loop does not support checkpoint.path; "
            "checkpoint individual refinements instead"
        )
    sched = config.schedule.to_schedule()
    pad_factor = config.pad_factor
    current_map = initial_map
    orientations = list(views.initial_orientations)
    history: list[IterationRecord] = []
    best_res = np.inf
    for it in range(max_iterations):
        refiner = OrientationRefiner(current_map, config=config)
        result = refiner.refine(
            views,
            initial_orientations=orientations,
            schedule=sched,
            refine_centers=config.refine_centers,
        )
        orientations = result.orientations
        current_map = reconstruct_from_views(
            views.images,
            orientations,
            apix=views.apix,
            pad_factor=pad_factor,
            ctf_params=views.ctf_params,
        )
        curve = correlation_curve(views.images, orientations, apix=views.apix, pad_factor=pad_factor, ctf_params=views.ctf_params)
        res = curve.crossing(0.5)
        history.append(
            IterationRecord(
                iteration=it,
                orientations=orientations,
                density=current_map,
                resolution_angstrom=res,
                mean_distance=float(result.distances.mean()),
            )
        )
        if res > best_res - min_improvement_angstrom and it > 0:
            break
        best_res = min(best_res, res)
    return history
