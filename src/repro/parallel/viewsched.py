"""Process-parallel view scheduler (the paper's step-b fan-out, real processes).

The simulated cluster in :mod:`repro.parallel.prefine` reproduces the
paper's *accounting*; this module reproduces its *throughput* on real
hardware.  Views are embarrassingly parallel within a resolution level
(the only synchronization point is the per-level barrier, step m), so the
scheduler:

* shares the oversampled D̂ once per machine via
  ``multiprocessing.shared_memory`` — the in-process analog of the paper's
  one-replica-per-node decision (step b) — instead of pickling the volume
  into every task;
* fans views out in contiguous chunks over a ``concurrent.futures``
  process pool, several chunks per worker so stragglers (views whose
  windows slide) rebalance;
* caches the per-process :class:`DistanceComputer` (and therefore its
  fused :class:`~repro.align.fused.MatchPlan`) across chunks and levels,
  so plans are built once per worker, not once per task;
* falls back to a plain serial loop when ``n_workers == 1`` — the same
  :func:`refine_level_serial` used by the serial refiner and the simulated
  cluster, so all three drivers execute the identical per-view kernel and
  return bit-identical results.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Any, Sequence

import numpy as np

from repro.align.distance import DistanceComputer
from repro.analysis.contracts import array_contract, spec
from repro.arraytypes import Array
from repro.geometry.euler import Orientation
from repro.refine.multires import RefinementLevel
from repro.refine.single import refine_view_at_level

__all__ = [
    "ViewLevelResult",
    "SharedVolume",
    "ViewScheduler",
    "refine_level_serial",
    "chunk_indices",
]


@dataclass(frozen=True)
class ViewLevelResult:
    """Outcome of one view × one level, tagged with the view's global index."""

    index: int
    orientation: Orientation
    distance: float
    n_windows: int
    n_matches: int
    n_center_evals: int
    slid_window: bool
    slid_center: bool


def chunk_indices(n_items: int, n_chunks: int) -> list[Array]:
    """Contiguous, near-equal index chunks covering ``range(n_items)``.

    Returns at most ``n_chunks`` non-empty chunks (fewer when there are
    fewer items than chunks).
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    if n_items == 0:
        return []
    return [c for c in np.array_split(np.arange(n_items), min(n_chunks, n_items)) if c.size]


def refine_level_serial(
    volume_ft: Array,
    view_fts: Array,
    orientations: Sequence[Orientation],
    modulations: Sequence[Array | None] | None,
    level: RefinementLevel,
    *,
    distance_computer: DistanceComputer | None = None,
    kernel: str = "fused",
    interpolation: str = "trilinear",
    max_slides: int = 8,
    refine_centers: bool = True,
    inner_iterations: int = 2,
) -> list[ViewLevelResult]:
    """Steps f–l for a set of views at one level, serially in this process.

    This is the single per-view loop shared by the serial refiner, the
    simulated cluster and the process pool workers.
    """
    out: list[ViewLevelResult] = []
    for q in range(len(orientations)):
        res = refine_view_at_level(
            view_fts[q],
            volume_ft,
            orientations[q],
            angular_step_deg=level.angular_step_deg,
            center_step_px=level.center_step_px,
            half_steps=level.half_steps,
            center_half_steps=level.center_half_steps,
            max_slides=max_slides,
            distance_computer=distance_computer,
            interpolation=interpolation,
            refine_centers=refine_centers,
            inner_iterations=inner_iterations,
            cut_modulation=None if modulations is None else modulations[q],
            kernel=kernel,
        )
        out.append(
            ViewLevelResult(
                index=q,
                orientation=res.orientation,
                distance=res.distance,
                n_windows=res.n_windows,
                n_matches=res.n_matches,
                n_center_evals=res.n_center_evals,
                slid_window=res.slid_window,
                slid_center=res.slid_center,
            )
        )
    return out


class SharedVolume:
    """A copy of an ndarray in POSIX shared memory, attachable by name.

    One replica of D̂ per machine, exactly as the paper replicates D̂ once
    per node: workers attach read-only by name instead of receiving a
    pickled copy per task.
    """

    def __init__(self, array: Array) -> None:
        arr = np.ascontiguousarray(array)
        self._shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        self.shape = arr.shape
        self.dtype = arr.dtype
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._shm.buf)
        view[...] = arr
        self.name = self._shm.name

    def descriptor(self) -> tuple[str, tuple[int, ...], str]:
        """Picklable (name, shape, dtype) handle for workers."""
        return (self.name, self.shape, self.dtype.str)

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        self._shm = None  # type: ignore[assignment]


# -- worker side ------------------------------------------------------------
# Per-process caches: the attached D̂ replica (keyed by segment name) and
# the distance computer / plan state (keyed by the scheduler's spec id).
_WORKER_VOLUMES: dict[str, tuple[Any, Array]] = {}
_WORKER_SPECS: dict[str, DistanceComputer | None] = {}


@array_contract(ret=spec(shape=("v", "v", "v"), dtype="inexact", contiguous=True))
def _attach_volume(descriptor: tuple[str, tuple[int, ...], str]) -> Array:
    name, shape, dtype = descriptor
    cached = _WORKER_VOLUMES.get(name)
    if cached is None:
        shm = shared_memory.SharedMemory(name=name)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        arr.setflags(write=False)
        # keep the SharedMemory object alive for the array's lifetime
        _WORKER_VOLUMES[name] = (shm, arr)
        return arr
    return cached[1]


def _worker_refine_chunk(payload: dict[str, Any]) -> list[ViewLevelResult]:
    """Run one chunk of views in a worker process (module-level: picklable)."""
    volume = _attach_volume(payload["volume"])
    spec_id = payload["spec_id"]
    if spec_id not in _WORKER_SPECS:
        _WORKER_SPECS[spec_id] = payload["distance_computer"]
    dc = _WORKER_SPECS[spec_id]
    results = refine_level_serial(
        volume,
        payload["view_fts"],
        payload["orientations"],
        payload["modulations"],
        payload["level"],
        distance_computer=dc,
        kernel=payload["kernel"],
        interpolation=payload["interpolation"],
        max_slides=payload["max_slides"],
        refine_centers=payload["refine_centers"],
        inner_iterations=payload["inner_iterations"],
    )
    indices = payload["indices"]
    return [replace(r, index=int(indices[r.index])) for r in results]


# -- scheduler --------------------------------------------------------------
class ViewScheduler:
    """Fans per-view refinement out over a process pool (or runs serially).

    Parameters
    ----------
    n_workers:
        Process count; ``1`` (default) runs everything inline with no pool
        and no shared memory — the exact serial code path.
    chunks_per_worker:
        Oversubscription factor: each level is split into
        ``n_workers · chunks_per_worker`` chunks so a straggler chunk (a
        view whose windows slide) does not idle the other workers.
    mp_context:
        Optional multiprocessing start method (``"fork"``, ``"spawn"``, …);
        platform default when ``None``.

    Use as a context manager, or call :meth:`close` when done — it shuts
    the pool down and unlinks the shared D̂ replica.
    """

    def __init__(
        self,
        n_workers: int = 1,
        chunks_per_worker: int = 4,
        mp_context: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.n_workers = int(n_workers)
        self.chunks_per_worker = int(chunks_per_worker)
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._shared: SharedVolume | None = None
        self._shared_key: int | None = None
        self._spec_ids: dict[int, str] = {}

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "ViewScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool and unlink the shared volume (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None
            self._shared_key = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing as mp

            ctx = mp.get_context(self._mp_context) if self._mp_context else mp.get_context()
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers, mp_context=ctx)
        return self._executor

    def _share(self, volume_ft: Array) -> SharedVolume:
        # The caller keeps volume_ft alive for the scheduler's lifetime
        # (the refiner holds it for the whole run), so id() is a stable key.
        key = id(volume_ft)
        if self._shared is not None and self._shared_key == key:
            return self._shared
        if self._shared is not None:
            self._shared.close()
        self._shared = SharedVolume(volume_ft)
        self._shared_key = key
        return self._shared

    def _spec_id(self, distance_computer: DistanceComputer | None) -> str:
        key = id(distance_computer)
        spec = self._spec_ids.get(key)
        if spec is None:
            spec = f"spec-{id(self):x}-{len(self._spec_ids)}"
            self._spec_ids[key] = spec
        return spec

    # -- the level fan-out ---------------------------------------------------
    def run_level(
        self,
        volume_ft: Array,
        view_fts: Array,
        orientations: Sequence[Orientation],
        modulations: Sequence[Array | None] | None,
        level: RefinementLevel,
        *,
        distance_computer: DistanceComputer | None = None,
        kernel: str = "fused",
        interpolation: str = "trilinear",
        max_slides: int = 8,
        refine_centers: bool = True,
        inner_iterations: int = 2,
    ) -> list[ViewLevelResult]:
        """Steps f–l for every view at one level; results ordered by view index.

        Results are bit-identical to :func:`refine_level_serial` regardless
        of worker count or chunking, since views are independent.
        """
        m = len(orientations)
        if self.n_workers == 1 or m < 2:
            return refine_level_serial(
                volume_ft,
                view_fts,
                orientations,
                modulations,
                level,
                distance_computer=distance_computer,
                kernel=kernel,
                interpolation=interpolation,
                max_slides=max_slides,
                refine_centers=refine_centers,
                inner_iterations=inner_iterations,
            )
        shared = self._share(volume_ft)
        spec_id = self._spec_id(distance_computer)
        chunks = chunk_indices(m, self.n_workers * self.chunks_per_worker)
        executor = self._ensure_executor()
        futures = []
        for chunk in chunks:
            payload = {
                "volume": shared.descriptor(),
                "spec_id": spec_id,
                "distance_computer": distance_computer,
                "view_fts": np.asarray(view_fts)[chunk],
                "orientations": [orientations[i] for i in chunk],
                "modulations": None
                if modulations is None
                else [modulations[i] for i in chunk],
                "level": level,
                "kernel": kernel,
                "interpolation": interpolation,
                "max_slides": max_slides,
                "refine_centers": refine_centers,
                "inner_iterations": inner_iterations,
                "indices": chunk,
            }
            futures.append(executor.submit(_worker_refine_chunk, payload))
        results: list[ViewLevelResult] = []
        for future in futures:
            results.extend(future.result())
        results.sort(key=lambda r: r.index)
        return results
