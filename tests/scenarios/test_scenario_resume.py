"""Checkpoint/resume through the scenario harness (DESIGN.md §8 + §12).

A scenario killed at a level boundary and resumed from its checkpoint
must report *identical* accuracy metrics and an identical
``BENCH_scenarios.json`` record (under :meth:`ScenarioRecord.comparable`,
which strips wall-clock timing and the execution-strategy engine keys —
exactly the fields the engine fingerprint already excludes).
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.faults.checkpoint import load_checkpoint
from repro.faults.plan import FaultInjected, FaultPlan, FaultSpec
from repro.pipeline.scenarios import (
    PerturbationSpec,
    Scenario,
    ScenarioRunner,
    ScenarioThresholds,
    write_bench,
)

pytestmark = pytest.mark.scenarios

BASE = Scenario(
    name="resume-tiny",
    kind="asymmetric",
    size=16,
    n_views=4,
    snr=math.inf,
    r_max=6.0,
    max_slides=3,
    schedule_levels=((1.0, 1.0, 2, 1), (0.5, 0.5, 2, 1), (0.25, 0.25, 2, 1)),
    perturbation=PerturbationSpec(mode="gaussian", angle_deg=1.5, seed=11),
    thresholds=ScenarioThresholds(max_median_angular_error_deg=1.8),
)


def _with_checkpoint(
    scenario: Scenario, path: str, resume: bool = False, killable: bool = False
) -> Scenario:
    # Fault injection rides the process backend (the serial backend has no
    # fault fabric); all backends are bit-identical, and ``comparable()``
    # strips the parallel/checkpoint sections anyway.
    engine: dict = {"checkpoint": {"path": path, "resume": resume}}
    if killable:
        engine["parallel"] = {"backend": "process", "n_workers": 1}
    return replace(scenario, engine=engine)


def test_killed_then_resumed_record_is_identical(tmp_path):
    runner = ScenarioRunner()
    ckpt = str(tmp_path / "scenario.ckpt")

    # kill at the level-1 barrier: level 0's checkpoint is on disk
    with pytest.raises(FaultInjected):
        runner.run_scenario(
            _with_checkpoint(BASE, ckpt, killable=True),
            fault_plan=FaultPlan((FaultSpec("abort-level", "level:1"),)),
        )
    saved = load_checkpoint(ckpt)
    assert saved.levels_done == 1

    resumed = runner.run_scenario(_with_checkpoint(BASE, ckpt, resume=True))
    uninterrupted = runner.run_scenario(BASE)

    # accuracy metrics identical to the last bit, records identical under
    # the comparable view (timing/perf/execution-strategy stripped)
    assert resumed.metrics == uninterrupted.metrics
    assert resumed.fingerprint == uninterrupted.fingerprint
    assert resumed.comparable() == uninterrupted.comparable()
    assert resumed.passed and uninterrupted.passed


def test_resumed_bench_record_matches_on_disk(tmp_path):
    """The persisted BENCH record (not just the in-memory one) matches."""
    runner = ScenarioRunner()
    ckpt = str(tmp_path / "scenario.ckpt")

    with pytest.raises(FaultInjected):
        runner.run_scenario(
            _with_checkpoint(BASE, ckpt, killable=True),
            fault_plan=FaultPlan((FaultSpec("abort-level", "level:1"),)),
        )
    resumed = runner.run_scenario(_with_checkpoint(BASE, ckpt, resume=True))
    uninterrupted = runner.run_scenario(BASE)

    p_resumed = write_bench([resumed], tmp_path / "resumed.json")
    p_clean = write_bench([uninterrupted], tmp_path / "clean.json")

    def normalized(payload):
        (record,) = payload["scenarios"]
        record.pop("timing")
        record.pop("perf")
        record["spec"]["engine"].pop("checkpoint", None)
        record["spec"]["engine"].pop("parallel", None)
        return payload

    assert normalized(p_resumed) == normalized(p_clean)


def test_resume_refuses_config_mismatch(tmp_path):
    """A checkpoint resumed under different matching knobs must refuse."""
    from repro.faults.checkpoint import CheckpointConfigMismatch

    runner = ScenarioRunner()
    ckpt = str(tmp_path / "scenario.ckpt")
    with pytest.raises(FaultInjected):
        runner.run_scenario(
            _with_checkpoint(BASE, ckpt, killable=True),
            fault_plan=FaultPlan((FaultSpec("abort-level", "level:1"),)),
        )
    drifted = replace(BASE, r_max=5.0)
    with pytest.raises(CheckpointConfigMismatch):
        runner.run_scenario(_with_checkpoint(drifted, ckpt, resume=True))
