"""View-direction sampling and search-space cardinality (Figure 1b, §3).

The paper quantifies why unknown symmetry is expensive: at angular
resolution ``r`` the brute-force orientation search space has

    |P| = (Δθ/r) · (Δφ/r) · (Δω/r)

candidates (§3), e.g. (180/0.1)³ ≈ 5.8·10⁹ for a full-sphere search, while an
icosahedral particle at 3° needs only ~51 calculated views inside the
asymmetric unit (Figure 1b).  This module provides both the grids themselves
and the counting functions used by benchmark E3.
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation

__all__ = [
    "fibonacci_sphere",
    "view_directions_grid",
    "count_orientations",
    "search_space_cardinality",
    "icosahedral_asymmetric_unit_views",
]


def fibonacci_sphere(n: int) -> Array:
    """``n`` quasi-uniform unit vectors on the sphere (golden-spiral lattice).

    Used for symmetry-axis searches where a near-uniform angular coverage
    matters more than a separable (θ, φ) grid.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    i = np.arange(n, dtype=float)
    golden = (1.0 + np.sqrt(5.0)) / 2.0
    z = 1.0 - 2.0 * (i + 0.5) / n
    r = np.sqrt(np.clip(1.0 - z * z, 0.0, None))
    phi = 2.0 * np.pi * i / golden
    return np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=1)


def view_directions_grid(
    angular_resolution_deg: float,
    theta_range: tuple[float, float] = (0.0, 180.0),
    phi_range: tuple[float, float] = (0.0, 360.0),
) -> list[tuple[float, float]]:
    """Separable (θ, φ) grid at the given angular resolution.

    Matches the paper's sampling: θ steps uniformly; at each θ the φ step is
    widened by 1/sin(θ) so that arc-length spacing on the sphere is
    approximately ``angular_resolution_deg`` everywhere (this is the standard
    trick that keeps Figure 1b's view count at ~51 rather than the naive
    (180/3)·(360/3)).
    """
    if angular_resolution_deg <= 0:
        raise ValueError("angular resolution must be positive")
    t_lo, t_hi = theta_range
    p_lo, p_hi = phi_range
    if t_hi < t_lo or p_hi < p_lo:
        raise ValueError("ranges must be increasing")
    views: list[tuple[float, float]] = []
    thetas = np.arange(t_lo, t_hi + 1e-9, angular_resolution_deg)
    for theta in thetas:
        st = np.sin(np.deg2rad(theta))
        if st < 1e-9:
            views.append((float(theta), float(p_lo)))
            continue
        step = angular_resolution_deg / st
        phis = np.arange(p_lo, p_hi - 1e-9, step)
        views.extend((float(theta), float(p)) for p in phis)
    return views


def count_orientations(
    angular_resolution_deg: float,
    theta_range: tuple[float, float] = (0.0, 180.0),
    phi_range: tuple[float, float] = (0.0, 360.0),
    omega_range: tuple[float, float] | None = (0.0, 360.0),
) -> int:
    """Number of grid orientations, with sin(θ)-corrected φ sampling.

    If ``omega_range`` is ``None`` only view *directions* are counted (this is
    what Figure 1b plots for the icosahedral asymmetric unit).
    """
    n_dir = len(view_directions_grid(angular_resolution_deg, theta_range, phi_range))
    if omega_range is None:
        return n_dir
    o_lo, o_hi = omega_range
    n_omega = max(1, int(round((o_hi - o_lo) / angular_resolution_deg)))
    return n_dir * n_omega


def search_space_cardinality(
    angular_resolution_deg: float,
    theta_extent_deg: float = 180.0,
    phi_extent_deg: float = 180.0,
    omega_extent_deg: float = 180.0,
) -> int:
    """The paper's §3 brute-force cardinality |P| = Π extentᵢ / r_angular.

    This is the *naive separable* count the paper uses for its
    six-orders-of-magnitude comparison (e.g. (180/0.1)³ ≈ 5.8·10⁹); no
    sin(θ) correction is applied, by design.
    """
    if angular_resolution_deg <= 0:
        raise ValueError("angular resolution must be positive")
    n_t = int(round(theta_extent_deg / angular_resolution_deg))
    n_p = int(round(phi_extent_deg / angular_resolution_deg))
    n_o = int(round(omega_extent_deg / angular_resolution_deg))
    return max(1, n_t) * max(1, n_p) * max(1, n_o)


def icosahedral_asymmetric_unit_views(angular_resolution_deg: float) -> list[tuple[float, float]]:
    """View directions inside the standard icosahedral asymmetric unit.

    The asymmetric unit used here is the spherical triangle bounded by a
    5-fold axis, a 3-fold axis and a 2-fold axis — 1/60th of the sphere.  In
    the paper's coordinate frame (Figure 1b) it spans θ ∈ [69.1°, 90°],
    φ ∈ [-31.7°, 31.7°] narrowing toward the 3-fold vertex.  At 3° this
    yields on the order of 50 views, reproducing Figure 1b.
    """
    if angular_resolution_deg <= 0:
        raise ValueError("angular resolution must be positive")
    # Vertices of the asymmetric unit in the 2-fold-on-X icosahedral frame
    # (Figure 1b): 5-folds at (90, ±31.7), 3-fold at (69.1, 0), 2-fold (90,0).
    theta3 = 69.09484255211071  # arccos of 3-fold axis z-component
    phi5 = 31.717474411461005  # atan of 5-fold axis offset
    views: list[tuple[float, float]] = []
    thetas = np.arange(theta3, 90.0 + 1e-9, angular_resolution_deg)
    for theta in thetas:
        # Linear taper of the φ half-width from 0 at the 3-fold vertex to
        # phi5 at the 2-fold/5-fold edge (θ=90).
        frac = (theta - theta3) / (90.0 - theta3)
        half_width = frac * phi5
        st = np.sin(np.deg2rad(theta))
        step = angular_resolution_deg / max(st, 1e-9)
        if half_width < step / 2:
            views.append((float(theta), 0.0))
            continue
        phis = np.arange(-half_width, half_width + 1e-9, step)
        views.extend((float(theta), float(p)) for p in phis)
    return views
