"""Command-line interface: the production-style entry points.

The original programs were driven by control files over MRC maps, image
stacks and orientation files; this CLI reproduces that workflow:

    python -m repro.pipeline.cli simulate   --kind sindbis --size 32 ...
    python -m repro.pipeline.cli refine     --map map.mrc --stack views.mrc ...
    python -m repro.pipeline.cli reconstruct --stack views.mrc --orient o.txt ...
    python -m repro.pipeline.cli detect-symmetry --map map.mrc
    python -m repro.pipeline.cli resolution --stack views.mrc --orient o.txt

Every subcommand reads/writes standard artifacts (MRC2014 + the plain-text
orientation format), so the steps compose through the filesystem exactly
like the paper's pipeline.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["build_parser", "main", "validate_refine_args"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for all subcommands (exposed for doc/testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orientation refinement of virus structures with unknown symmetry (IPPS 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic dataset (map + view stack + orientations)")
    sim.add_argument("--kind", default="sindbis", help="phantom kind: sindbis|reo|asymmetric|cN")
    sim.add_argument("--size", type=int, default=32)
    sim.add_argument("--views", type=int, default=24)
    sim.add_argument("--snr", type=float, default=3.0)
    sim.add_argument("--apix", type=float, default=1.0)
    sim.add_argument("--center-sigma", type=float, default=0.5)
    sim.add_argument("--initial-error", type=float, default=3.0, help="deg of jitter on O_init")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--out-map", required=True)
    sim.add_argument("--out-stack", required=True)
    sim.add_argument("--out-orient", required=True)
    sim.add_argument("--out-truth-orient", default=None)

    ref = sub.add_parser("refine", help="refine orientations of a view stack against a map")
    ref.add_argument("--map", dest="map_path", required=True)
    ref.add_argument("--stack", required=True)
    ref.add_argument("--orient", required=True, help="initial orientation file")
    ref.add_argument("--out", required=True, help="refined orientation file")
    ref.add_argument("--r-max", type=float, default=None)
    ref.add_argument("--levels", default="1.0,0.5", help="comma-separated angular steps")
    ref.add_argument("--half-steps", type=int, default=3)
    ref.add_argument("--max-slides", type=int, default=2)
    ref.add_argument("--no-centers", action="store_true")
    ref.add_argument("--ranks", type=int, default=0, help=">0: run on the simulated cluster")
    ref.add_argument(
        "--kernel", choices=("batched", "fused", "reference"), default="batched",
        help="matching kernel: batched whole-window with memo (default), fused "
        "in-band per candidate, or the reference slow path (all bit-identical)",
    )
    ref.add_argument(
        "--no-memo", action="store_true",
        help="disable the orientation memo cache (batched kernel only)",
    )
    ref.add_argument(
        "--workers", type=int, default=1,
        help="process count for the per-view fan-out (1 = serial)",
    )
    ref.add_argument(
        "--checkpoint", default=None,
        help="write a level-granular checkpoint here after every completed level",
    )
    ref.add_argument(
        "--resume", action="store_true",
        help="seed the run from --checkpoint if it matches this schedule and stack",
    )

    rec = sub.add_parser("reconstruct", help="direct-Fourier reconstruction from a stack + orientations")
    rec.add_argument("--stack", required=True)
    rec.add_argument("--orient", required=True)
    rec.add_argument("--out", required=True)
    rec.add_argument("--pad", type=int, default=2)

    det = sub.add_parser("detect-symmetry", help="detect the point group of a map")
    det.add_argument("--map", dest="map_path", required=True)
    det.add_argument("--max-order", type=int, default=6)
    det.add_argument("--axes", type=int, default=150)
    det.add_argument("--seed", type=int, default=0)

    res = sub.add_parser("resolution", help="odd/even FSC resolution of a stack + orientations")
    res.add_argument("--stack", required=True)
    res.add_argument("--orient", required=True)
    res.add_argument("--threshold", type=float, default=0.5)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.density import write_mrc
    from repro.imaging import simulate_views
    from repro.pipeline.datasets import phantom_for
    from repro.refine import write_orientation_file

    density = phantom_for(args.kind, args.size, apix=args.apix, seed=args.seed)
    views = simulate_views(
        density, args.views, snr=args.snr, center_sigma_px=args.center_sigma,
        initial_angle_error_deg=args.initial_error, seed=args.seed,
    )
    write_mrc(args.out_map, density.data, apix=args.apix)
    write_mrc(args.out_stack, views.images, apix=args.apix)
    write_orientation_file(args.out_orient, views.initial_orientations)
    if args.out_truth_orient:
        write_orientation_file(args.out_truth_orient, views.true_orientations)
    print(f"wrote {args.out_map}, {args.out_stack} ({args.views} views), {args.out_orient}")
    return 0


def _parse_levels(levels: str) -> list[float]:
    """Parse ``--levels`` into angular steps, raising ``ValueError`` on junk."""
    try:
        steps = [float(s) for s in levels.split(",") if s.strip()]
    except ValueError:
        raise ValueError(f"--levels must be comma-separated numbers, got {levels!r}") from None
    if not steps:
        raise ValueError("--levels must name at least one angular step")
    if any(s <= 0 for s in steps):
        raise ValueError(f"--levels steps must be positive degrees, got {levels!r}")
    return steps


def validate_refine_args(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Reject malformed refine options with the standard argparse exit (2).

    Catching these up front means a typo'd ``--workers 0`` fails in
    milliseconds with a usage message instead of deep inside the scheduler
    after the map and stack have already been loaded.
    """
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.ranks < 0:
        parser.error(f"--ranks must be >= 0 (0 = in-process), got {args.ranks}")
    if args.half_steps < 1:
        parser.error(f"--half-steps must be >= 1, got {args.half_steps}")
    if args.max_slides < 0:
        parser.error(f"--max-slides must be >= 0, got {args.max_slides}")
    if args.r_max is not None and args.r_max <= 0:
        parser.error(f"--r-max must be positive, got {args.r_max}")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.checkpoint and args.ranks > 0:
        parser.error("--checkpoint is only supported for the in-process path (--ranks 0)")
    try:
        _parse_levels(args.levels)
    except ValueError as exc:
        parser.error(str(exc))


def _load_stack(path: str) -> tuple[np.ndarray, float]:
    from repro.density import read_mrc

    data, apix = read_mrc(path)
    if data.ndim == 2:
        data = data[None]
    return data, apix


def _cmd_refine(args: argparse.Namespace) -> int:
    from repro.density import DensityMap, read_mrc
    from repro.refine import OrientationRefiner, read_orientation_file, write_orientation_file
    from repro.refine.multires import MultiResolutionSchedule, RefinementLevel

    map_data, map_apix = read_mrc(args.map_path)
    density = DensityMap(map_data, map_apix)
    stack, _ = _load_stack(args.stack)
    init, _ = read_orientation_file(args.orient)
    steps = _parse_levels(args.levels)
    schedule = MultiResolutionSchedule(
        tuple(RefinementLevel(s, s, half_steps=args.half_steps) for s in steps)
    )
    if args.ranks > 0:
        from repro.imaging.simulate import SimulatedViews
        from repro.parallel import parallel_refine

        views = SimulatedViews(
            images=stack, true_orientations=init, initial_orientations=init,
            ctf_params=None, apix=density.apix,
        )
        report = parallel_refine(
            views, density, n_ranks=args.ranks, schedule=schedule, r_max=args.r_max,
            refine_centers=not args.no_centers, orientation_file=args.out,
            kernel=args.kernel,
        )
        print(
            f"refined {len(init)} views on {args.ranks} simulated ranks; "
            f"virtual time {report.simulated_total_seconds:.2f} s; wrote {args.out}"
        )
        if report.perf is not None:
            print(f"perf: {report.perf.summary()}")
        return 0
    refiner = OrientationRefiner(
        density, r_max=args.r_max, max_slides=args.max_slides,
        kernel=args.kernel, memo=not args.no_memo, n_workers=args.workers,
    )
    result = refiner.refine(
        stack, initial_orientations=init, schedule=schedule,
        refine_centers=not args.no_centers,
        checkpoint_path=args.checkpoint, resume=args.resume,
    )
    write_orientation_file(args.out, result.orientations, scores=result.distances)
    print(
        f"refined {len(init)} views; {result.stats.total_matches:,} matchings; wrote {args.out}"
    )
    if result.perf is not None:
        print(f"perf: {result.perf.summary()}")
    return 0


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    from repro.density import write_mrc
    from repro.reconstruct import reconstruct_from_views
    from repro.refine import read_orientation_file

    stack, apix = _load_stack(args.stack)
    orients, _ = read_orientation_file(args.orient)
    if len(orients) != stack.shape[0]:
        print(
            f"error: {len(orients)} orientations vs {stack.shape[0]} views", file=sys.stderr
        )
        return 2
    density = reconstruct_from_views(stack, orients, apix=apix, pad_factor=args.pad)
    write_mrc(args.out, density.data, apix=apix)
    print(f"reconstructed {stack.shape[0]} views -> {args.out}")
    return 0


def _cmd_detect_symmetry(args: argparse.Namespace) -> int:
    from repro.density import DensityMap, read_mrc
    from repro.refine import detect_symmetry

    data, apix = read_mrc(args.map_path)
    density = DensityMap(data, apix)
    result = detect_symmetry(
        density, max_order=args.max_order, n_axes=args.axes, seed=args.seed
    )
    axes = ", ".join(f"{o}-fold" for _, o, _ in result.axes) or "none"
    print(f"group: {result.group_name} (order {result.group.order}); axes: {axes}")
    return 0


def _cmd_resolution(args: argparse.Namespace) -> int:
    from repro.reconstruct import correlation_curve
    from repro.refine import read_orientation_file

    stack, apix = _load_stack(args.stack)
    orients, _ = read_orientation_file(args.orient)
    curve = correlation_curve(stack, orients, apix=apix)
    res = curve.crossing(args.threshold)
    for shell, r, cc in zip(curve.shells, curve.resolution_angstrom, curve.cc):
        print(f"shell {int(shell):3d}  {r:8.2f} A   cc {cc:+.3f}")
    print(f"{args.threshold}-crossing resolution: {res:.2f} A")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (0 = success)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "refine":
        validate_refine_args(parser, args)
    handlers = {
        "simulate": _cmd_simulate,
        "refine": _cmd_refine,
        "reconstruct": _cmd_reconstruct,
        "detect-symmetry": _cmd_detect_symmetry,
        "resolution": _cmd_resolution,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
