"""Map resampling: Fourier cropping/padding and real-space box operations.

Production pipelines constantly change sampling: coarse maps for early
refinement iterations (the paper's "increase the resolution gradually"),
fine maps at the end.  Fourier cropping is the exact band-limited
downsampling operator (it commutes with the central-slice extraction the
refinement performs), Fourier padding its interpolating inverse.
"""

from __future__ import annotations

import numpy as np

from repro.density.map import DensityMap
from repro.fourier.transforms import centered_fftn, centered_ifftn, fourier_center
from repro.utils import require_cube

__all__ = ["fourier_crop", "fourier_pad", "crop_box", "pad_box"]


def _central_block(size_out: int, size_in: int) -> slice:
    lo = fourier_center(size_in) - fourier_center(size_out)
    return slice(lo, lo + size_out)


def fourier_crop(density: DensityMap, new_size: int) -> DensityMap:
    """Band-limited downsampling to ``new_size`` voxels per side.

    Keeps the central ``new_size³`` block of the transform — exactly the
    frequencies a ``new_size`` grid can represent — and renormalizes so
    density *values* are preserved (the mean of the map is unchanged).
    The voxel size grows by ``size/new_size``.
    """
    l = density.size
    if not 0 < new_size <= l:
        raise ValueError(f"new_size must be in (0, {l}]")
    if new_size == l:
        return density.copy()
    ft = density.fourier()
    sl = _central_block(new_size, l)
    cropped = ft[sl, sl, sl]
    data = centered_ifftn(cropped).real * (new_size**3 / l**3)
    return DensityMap(np.ascontiguousarray(data), density.apix * l / new_size)


def fourier_pad(density: DensityMap, new_size: int) -> DensityMap:
    """Band-limited upsampling (sinc interpolation) to ``new_size``.

    The inverse of :func:`fourier_crop` on band-limited maps; adds no new
    information, only finer sampling.  The voxel size shrinks accordingly.
    """
    l = density.size
    if new_size < l:
        raise ValueError("new_size must be >= current size (use fourier_crop to shrink)")
    if new_size == l:
        return density.copy()
    ft = density.fourier()
    big = np.zeros((new_size, new_size, new_size), dtype=complex)
    sl = _central_block(l, new_size)
    big[sl, sl, sl] = ft
    data = centered_ifftn(big).real * (new_size**3 / l**3)
    return DensityMap(np.ascontiguousarray(data), density.apix * l / new_size)


def crop_box(density: DensityMap, new_size: int) -> DensityMap:
    """Real-space crop of the central ``new_size³`` box (voxel size kept).

    Use when the particle occupies a fraction of the box; raises if density
    outside the kept region exceeds 5% of the total absolute mass (a
    guard against silently truncating the particle).
    """
    l = density.size
    if not 0 < new_size <= l:
        raise ValueError(f"new_size must be in (0, {l}]")
    if new_size == l:
        return density.copy()
    sl = _central_block(new_size, l)
    kept = density.data[sl, sl, sl]
    total = float(np.abs(density.data).sum())
    if total > 0 and (total - float(np.abs(kept).sum())) > 0.05 * total:
        raise ValueError("crop would discard more than 5% of the map's mass")
    return DensityMap(np.ascontiguousarray(kept), density.apix)


def pad_box(density: DensityMap, new_size: int, fill: float = 0.0) -> DensityMap:
    """Real-space zero-pad (or constant-pad) to a larger box (voxel size kept)."""
    l = density.size
    if new_size < l:
        raise ValueError("new_size must be >= current size (use crop_box to shrink)")
    if new_size == l:
        return density.copy()
    out = np.full((new_size, new_size, new_size), float(fill))
    sl = _central_block(l, new_size)
    out[sl, sl, sl] = density.data
    return DensityMap(out, density.apix)
