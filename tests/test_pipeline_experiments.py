"""Tests for the experiment runners (small-scale smoke + shape checks)."""

import numpy as np
import pytest

from repro.parallel import SINDBIS_WORKLOAD
from repro.parallel.machine import MachineSpec
from repro.pipeline import (
    MiniWorkload,
    run_search_space_report,
    run_sliding_window_experiment,
    run_symmetry_detection_experiment,
    run_timing_table_experiment,
)

FAST = MachineSpec("fast", flops=1e12, net_latency=1e-6, net_bandwidth=1e10, io_bandwidth=1e10)


def test_search_space_report_rows():
    rows = run_search_space_report(angular_resolutions=(3.0, 1.0))
    assert len(rows) == 2
    r3 = rows[0]
    assert 30 <= r3["icosahedral_views"] <= 80  # Figure 1b: ~51 views at 3 deg
    assert r3["asymmetric_cardinality"] == 60**3
    assert r3["ratio"] > 1e3
    # finer resolution -> bigger ratio
    assert rows[1]["ratio"] > rows[0]["ratio"]


def test_sliding_window_experiment():
    out = run_sliding_window_experiment(size=24, offset_deg=5.0, step_deg=1.0, half_steps=2)
    # without sliding the window cannot reach the truth; with it, it must
    assert out["no_slide_error_deg"] > 2.0
    assert out["slide_error_deg"] < 1.5
    assert out["slide_matches"] > out["no_slide_matches"]
    assert out["n_windows"] > 1


def test_symmetry_detection_experiment():
    out = run_symmetry_detection_experiment(kinds=("c4", "asymmetric"), size=24)
    assert out["c4"] == "C4"
    assert out["asymmetric"] == "C1"


def test_timing_table_experiment_structure():
    mini = MiniWorkload("t", "sindbis", size=24, n_views=8, snr=np.inf, perturbation_deg=1.0)
    out = run_timing_table_experiment(
        SINDBIS_WORKLOAD, mini=mini, n_ranks=2, machine=FAST,
        calibrate_level=0, calibrate_seconds=4053.0,
    )
    rows = out["model_rows"]
    assert len(rows) == 4
    assert rows[0]["Orientation refinement"] == pytest.approx(4053.0, rel=1e-6)
    report = out["mini_report"]
    assert len(report.orientations) == 8
    assert out["mini_wall_seconds"] > 0
