"""E9b — §6 design alternative: replicated D̂ vs on-demand bricks.

"On a distributed memory system we choose to replicate the electron
density map and its 3D DFT on every node because we wanted to reduce the
communication costs.  The alternative is to implement a shared virtual
memory where 3D bricks … are brought on demand" (§6).  This bench runs a
realistic refinement request stream through the brick-cache simulation and
prints the quantitative tradeoff behind the paper's choice.
"""

import pytest

from repro.parallel import compare_replication_vs_bricks
from repro.parallel.machine import SP2_LIKE
from repro.pipeline import format_table


def test_replication_vs_bricks_tradeoff(benchmark, save_artifact):
    out = benchmark.pedantic(
        lambda: compare_replication_vs_bricks(
            volume_size=64, out_size=32, n_windows=24, window_candidates=27,
            n_ranks=16, cache_bricks=128, machine=SP2_LIKE, seed=0,
        ),
        rounds=1, iterations=1,
    )

    # the paper's tradeoff, quantified: bricks save memory but pay per-slice
    # communication that replication never pays
    assert out["memory_ratio"] > 2.0
    assert out["comm_seconds"] > 0.0
    assert out["comm_seconds_replicated"] == 0.0
    # the cache works: a window's candidates share most bricks
    assert out["hit_rate"] > 0.3

    per_request_ms = 1000.0 * out["comm_seconds"] / out["requests"]
    table = format_table(
        ["quantity", "replicated D-hat", "on-demand bricks"],
        [
            ["memory per node (MB)", f"{out['replicated_memory_bytes'] / 1e6:.1f}",
             f"{out['brick_memory_bytes'] / 1e6:.1f}"],
            ["comm per iteration (s)", "0", f"{out['comm_seconds']:.3f}"],
            ["comm per slice request (ms)", "0", f"{per_request_ms:.2f}"],
            ["cache hit rate", "n/a", f"{out['hit_rate']:.2f}"],
        ],
        title="Sec. 6 design tradeoff (SP2-like costs, 16 ranks, 64-cube D-hat)",
    )
    table += (
        "\n\npaper: 'we choose to replicate ... because we wanted to reduce the"
        "\ncommunication costs. The alternative is ... 3D bricks ... on demand'"
    )
    save_artifact("bricks_tradeoff.txt", table)
