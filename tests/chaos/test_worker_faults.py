"""Chaos tests for the process-pool scheduler's recovery paths.

Every test injects a deterministic fault plan into a pooled refinement and
asserts two things: the recovery path under test actually fired (via the
scheduler's fault log) and the refined orientations are *bit-identical* to
the fault-free serial baseline.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.faults.plan import FaultPlan, FaultSpec, chunk_site
from repro.faults.retry import RetryPolicy
from repro.parallel.viewsched import ViewScheduler

from tests.chaos.conftest import assert_identical, shm_segments

pytestmark = pytest.mark.chaos


def run_chaos(chaos_problem, plan, *, n_workers=2, policy=None):
    """One pooled refinement under ``plan``; returns (result, fault log)."""
    views, refiner, schedule = chaos_problem
    scheduler = ViewScheduler(n_workers=n_workers, retry_policy=policy, fault_plan=plan)
    try:
        result = refiner.refine(views, schedule=schedule, scheduler=scheduler)
        return result, scheduler.fault_log
    finally:
        scheduler.close()


def test_crash_before_chunk_recovers(chaos_problem, baseline, no_shm_leak):
    plan = FaultPlan((FaultSpec("crash-before", "L0.C0"),))
    result, log = run_chaos(chaos_problem, plan)
    assert log.count("worker-lost") >= 1
    assert log.count("pool-restart") >= 1
    assert log.count("retry") >= 1
    assert_identical(result, baseline)


def test_crash_after_chunk_recovers(chaos_problem, baseline, no_shm_leak):
    plan = FaultPlan((FaultSpec("crash-after", "L1.C1"),))
    result, log = run_chaos(chaos_problem, plan)
    assert log.count("worker-lost") >= 1
    assert_identical(result, baseline)


def test_poison_detected_and_retried(chaos_problem, baseline, no_shm_leak):
    plan = FaultPlan((FaultSpec("poison", "L0.C*"),))
    result, log = run_chaos(chaos_problem, plan)
    assert log.count("poison-detected") >= 1
    assert log.count("retry") >= 1
    assert_identical(result, baseline)


def test_delay_triggers_timeout_and_requeue(chaos_problem, baseline, no_shm_leak):
    plan = FaultPlan((FaultSpec("delay", "L0.C0", delay_s=2.0),))
    policy = RetryPolicy(chunk_timeout_s=0.5)
    result, log = run_chaos(chaos_problem, plan, policy=policy)
    assert log.count("timeout") >= 1
    assert log.count("pool-restart") >= 1
    assert_identical(result, baseline)


def test_pool_exhaustion_degrades_to_serial(chaos_problem, baseline, no_shm_leak):
    # every attempt of chunk 0 crashes: the retry budget runs out and the
    # scheduler must finish the chunk on the serial path instead
    plan = FaultPlan((FaultSpec("crash-before", "L*.C0", times=99),))
    policy = RetryPolicy(max_attempts=2, max_pool_restarts=1)
    result, log = run_chaos(chaos_problem, plan, policy=policy)
    assert log.count("serial-fallback") >= 1
    assert_identical(result, baseline)


def test_repeated_crashes_still_converge(chaos_problem, baseline, no_shm_leak):
    # crash the same chunk twice (attempts 0 and 1); the third attempt runs
    plan = FaultPlan((FaultSpec("crash-before", "L0.C1", times=2),))
    result, log = run_chaos(chaos_problem, plan)
    assert log.count("pool-restart") >= 2
    assert_identical(result, baseline)


def test_scattered_faults_converge(chaos_problem, baseline, chaos_seed, no_shm_leak):
    # a seeded random sprinkle of crashes/poisons/delays over every chunk
    # site of both levels — the catch-all "any plan converges" property
    views, _, schedule = chaos_problem
    sites = [
        chunk_site(level, chunk)
        for level in range(len(schedule))
        for chunk in range(len(views))
    ]
    plan = FaultPlan.scatter(chaos_seed, sites, rate=0.4, delay_s=0.01)
    assert plan.specs, "scatter produced an empty plan; raise the rate"
    result, log = run_chaos(chaos_problem, plan)
    assert log.events, "no recovery action fired for a non-empty plan"
    assert_identical(result, baseline)


def test_killed_worker_leaks_no_shm(chaos_problem, baseline):
    """SIGKILL a live pool worker mid-run: no /dev/shm segment survives.

    Regression test for the shared-volume leak: a worker killed by the OS
    never runs its atexit hooks, so cleanup must not depend on them — the
    owner (the scheduler) unlinks the segment no matter how workers die.
    """
    views, refiner, schedule = chaos_problem
    before = shm_segments()
    # a delay long enough that the worker is alive when we shoot it
    plan = FaultPlan((FaultSpec("delay", "L0.C*", delay_s=1.5),))
    scheduler = ViewScheduler(n_workers=2, fault_plan=plan)
    try:
        import threading

        box = {}

        def run():
            box["result"] = refiner.refine(views, schedule=schedule, scheduler=scheduler)

        t = threading.Thread(target=run)
        t.start()
        deadline = time.monotonic() + 10.0
        killed = False
        while time.monotonic() < deadline and not killed:
            executor = scheduler._executor
            procs = list(executor._processes.values()) if executor else []
            for p in procs:
                if p.pid is not None and p.is_alive():
                    os.kill(p.pid, signal.SIGKILL)
                    killed = True
                    break
            time.sleep(0.02)
        assert killed, "never observed a live worker to kill"
        t.join(timeout=120.0)
        assert not t.is_alive(), "refinement did not finish after worker kill"
    finally:
        scheduler.close()
    assert_identical(box["result"], baseline)
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
