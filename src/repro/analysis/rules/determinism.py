"""RL001 — no nondeterminism in kernel/scheduler modules.

The scheduler promises bit-identical results at any worker count and the
fused/reference kernel pair promises bit-identical distances; both break
silently if a kernel module consults the wall clock or an unseeded RNG.
All randomness must flow through :func:`repro.utils.rng.default_rng` with
an explicit seed (or a caller-provided generator), and wall-clock time is
reserved for the timing utilities outside the kernel packages.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule, attribute_chain

__all__ = ["NoNondeterminism"]

_TIME_CALLS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "process_time"}


def _is_none_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _seedless(call: ast.Call) -> bool:
    """True when a default_rng-style call pins no seed (empty or literal None)."""
    if not call.args and not call.keywords:
        return True
    if call.args and _is_none_literal(call.args[0]):
        return True
    return any(kw.arg == "seed" and _is_none_literal(kw.value) for kw in call.keywords)


class NoNondeterminism(Rule):
    rule_id = "RL001"
    name = "no-nondeterminism"
    rationale = (
        "Kernel and scheduler modules must be bit-reproducible: no wall-clock "
        "reads, no stdlib random, and no RNG construction without an explicit "
        "seed — otherwise fused/reference equivalence and worker-count "
        "invariance cannot be tested."
    )
    include = (
        "repro/align/",
        "repro/fourier/",
        "repro/refine/",
        "repro/geometry/",
        "repro/parallel/",
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(mod,
                            node, "stdlib `random` is banned in kernel modules; "
                            "use repro.utils.default_rng(seed)"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(mod,
                        node, "stdlib `random` is banned in kernel modules; "
                        "use repro.utils.default_rng(seed)"
                    )
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None:
                    continue
                if chain[0] == "time" and len(chain) == 2 and chain[1] in _TIME_CALLS:
                    yield self.finding(mod,
                        node, f"wall-clock read `{'.'.join(chain)}()` in a kernel module "
                        "(timing belongs in repro.utils.timing / the pipeline layer)"
                    )
                elif len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
                    if chain[2] == "default_rng":
                        if _seedless(node):
                            yield self.finding(mod,
                                node, "np.random.default_rng() without an explicit seed"
                            )
                    elif chain[2] != "Generator":
                        yield self.finding(mod,
                            node, f"legacy/global RNG call `{'.'.join(chain)}(...)`; "
                            "route randomness through repro.utils.default_rng(seed)"
                        )
                elif chain == ["default_rng"] and _seedless(node):
                    yield self.finding(mod, node, "default_rng() without an explicit seed")
