"""Tests for the projectors (real-space vs Fourier-space agreement)."""

import numpy as np
import pytest

from repro.density import DensityMap
from repro.density.phantom import gaussian_blob
from repro.geometry import Orientation, euler_to_matrix
from repro.imaging import fourier_project, project_map, real_project


def _cc(a, b):
    a = a - a.mean()
    b = b - b.mean()
    return float((a * b).sum() / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-30))


def test_real_project_identity_is_axis_sum(phantom16):
    p = real_project(phantom16.data, np.eye(3))
    assert np.allclose(p, phantom16.data.sum(axis=0), atol=1e-10)


def test_real_project_matches_analytic_gaussian():
    l = 32
    pos = np.array([4.0, -3.0, 5.0])
    sigma = 2.0
    vol = gaussian_blob(l, pos, sigma)
    r = euler_to_matrix(57.3, 123.4, 31.2)
    proj = real_project(vol, r)
    center2d = r.T @ pos
    k = np.arange(l) - l // 2
    yy, xx = np.meshgrid(k, k, indexing="ij")
    expected = sigma * np.sqrt(2 * np.pi) * np.exp(
        -((xx - center2d[0]) ** 2 + (yy - center2d[1]) ** 2) / (2 * sigma**2)
    )
    assert np.abs(proj - expected).max() < 1e-3 * expected.max()


def test_real_project_mass_preserved_for_interior_object():
    vol = gaussian_blob(32, [2.0, 1.0, -2.0], 2.0)
    for angles in [(0, 0, 0), (45, 30, 60), (120, 200, 10)]:
        proj = real_project(vol, euler_to_matrix(*angles))
        assert proj.sum() == pytest.approx(vol.sum(), rel=1e-3)


def test_fourier_project_agrees_with_real(phantom24):
    r = euler_to_matrix(35.0, 60.0, 20.0)
    pf = fourier_project(phantom24.fourier_oversampled(2), r, out_size=24)
    pr = real_project(phantom24.data, r)
    assert _cc(pf, pr) > 0.98


def test_project_map_dispatch(phantom16, some_orientation):
    a = project_map(phantom16, some_orientation, method="real")
    b = project_map(phantom16, some_orientation, method="fourier")
    assert a.shape == b.shape == (16, 16)
    assert _cc(a, b) > 0.9
    with pytest.raises(ValueError):
        project_map(phantom16, some_orientation, method="hologram")


def test_projection_rotation_invariance_of_omega(phantom24):
    # changing omega only rotates the projection in-plane: the radial power
    # spectrum must be unchanged
    from repro.fourier import centered_fft2, shell_average

    o1 = Orientation(40.0, 70.0, 0.0)
    o2 = Orientation(40.0, 70.0, 90.0)
    p1 = project_map(phantom24, o1, method="real")
    p2 = project_map(phantom24, o2, method="real")
    s1 = shell_average(np.abs(centered_fft2(p1)) ** 2)
    s2 = shell_average(np.abs(centered_fft2(p2)) ** 2)
    assert np.allclose(s1[:8] / s1[0], s2[:8] / s2[0], rtol=0.1)


def test_omega_90_is_inplane_rotation(phantom24):
    p0 = project_map(phantom24, Orientation(40.0, 70.0, 0.0), method="real")
    p90 = project_map(phantom24, Orientation(40.0, 70.0, 90.0), method="real")
    # rotating the image by -90 deg (numpy rot) should recover p0 up to
    # interpolation; compare interior to dodge edge effects
    rot = np.rot90(p90, k=-1)  # try one direction
    rot2 = np.rot90(p90, k=1)
    # np.rot90 rotates about the array center (l/2 - 0.5) while the
    # projector rotates about the voxel l//2, so a half-pixel registration
    # error is built into this comparison; 0.92 still uniquely identifies
    # the in-plane rotation (other omegas correlate far lower)
    cc = max(_cc(rot[4:-4, 4:-4], p0[4:-4, 4:-4]), _cc(rot2[4:-4, 4:-4], p0[4:-4, 4:-4]))
    assert cc > 0.92


def test_projections_differ_between_orientations(phantom24):
    a = project_map(phantom24, Orientation(0, 0, 0), method="real")
    b = project_map(phantom24, Orientation(90, 40, 10), method="real")
    assert _cc(a, b) < 0.9
