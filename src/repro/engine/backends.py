"""Pluggable execution backends for the refinement engine.

One refinement level is the unit of fan-out (the paper synchronizes all
nodes at every resolution change, step m), so the backend protocol is
*level-granular*: :meth:`ExecutionBackend.run_level` takes the shared D̂,
the view transforms and the current orientations and returns per-view
results for exactly one :class:`~repro.refine.multires.RefinementLevel`.
The driver loop (:class:`~repro.refine.refiner.OrientationRefiner`) no
longer branches on worker counts — it asks :func:`make_backend` for a
backend and calls the same two methods whatever the execution strategy:

* :class:`SerialBackend` — everything inline in this process;
* :class:`ProcessBackend` — the shared-memory process pool of
  :class:`~repro.parallel.viewsched.ViewScheduler` (retry/timeout/restart
  fault tolerance included);
* :class:`SimBackend` — the simulated distributed-memory cluster of
  :func:`~repro.parallel.prefine.parallel_refine`.  SPMD ranks own their
  views for the *whole* schedule (the fabric is part of the simulation),
  so this backend does not decompose into levels; it runs complete
  refinements via :meth:`SimBackend.run_refinement` and ``run_level``
  raises.  :class:`~repro.engine.core.RefinementEngine` hides the split.

Every backend is bit-identical on orientations and distances: views are
independent, each path executes the same per-view kernel, and all
recovery paths re-execute it unchanged.  Backends never read the
environment or re-validate strings — everything they need arrives in the
:class:`~repro.engine.config.EngineConfig` they were built from.

All ``repro.*`` imports here are lazy: the kernel packages import
:mod:`repro.engine.env` at import time, so this package must finish
importing before any of them is pulled in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.engine.config import ConfigError, EngineConfig

if TYPE_CHECKING:  # pragma: no cover - type-only imports, avoids cycles
    from repro.align.distance import DistanceComputer
    from repro.align.memo import MemoStore
    from repro.arraytypes import Array
    from repro.density.map import DensityMap
    from repro.faults.plan import FaultPlan
    from repro.geometry.euler import Orientation
    from repro.imaging.simulate import SimulatedViews
    from repro.parallel.prefine import ParallelRefinementReport
    from repro.parallel.viewsched import ViewLevelResult, ViewPolishResult, ViewScheduler
    from repro.perf import PerfCounters
    from repro.refine.multires import RefinementLevel
    from repro.refine.prune import PruneParams
    from repro.refine.restrict import SymmetryRestriction

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "SimBackend",
    "make_backend",
]


class ExecutionBackend:
    """How per-view work is fanned out; never *what* is computed.

    Subclasses implement :meth:`run_level` (steps f–l for every view at
    one resolution, results ordered by view index) and :meth:`close`
    (release pools/shared memory; idempotent).  Backends are context
    managers so drivers can scope their lifetime with ``with``.
    """

    #: short name used in logs, dry-run output and reports
    name: str = "abstract"

    # The abstract signature is a fork point only in its overriders, which
    # all forward kernel= into the distance_band family; the base body
    # cannot compute anything to diverge.
    def run_level(  # repro-lint: allow[RL006]
        self,
        volume_ft: "Array",
        view_fts: "Array",
        orientations: Sequence["Orientation"],
        modulations: Sequence["Array | None"] | None,
        level: "RefinementLevel",
        *,
        distance_computer: "DistanceComputer | None" = None,
        kernel: str = "batched",
        interpolation: str = "trilinear",
        max_slides: int = 8,
        refine_centers: bool = True,
        memo_store: "MemoStore | None" = None,
        counters: "PerfCounters | None" = None,
        prune: "PruneParams | None" = None,
        seed_basins: Sequence["tuple[Orientation, ...] | None"] | None = None,
        symmetry: "SymmetryRestriction | None" = None,
        on_result: "Callable[[ViewLevelResult], None] | None" = None,
    ) -> list["ViewLevelResult"]:
        raise NotImplementedError

    def run_polish(
        self,
        volume_ft: "Array",
        view_fts: "Array",
        orientations: Sequence["Orientation"],
        distances: "Sequence[float] | Array",
        modulations: Sequence["Array | None"] | None,
        *,
        distance_computer: "DistanceComputer | None" = None,
        interpolation: str = "trilinear",
        max_iters: int = 30,
        tol: float = 1e-8,
        damping: float = 1e-3,
        n_best: int = 1,
        seed_basins: Sequence["tuple[Orientation, ...] | None"] | None = None,
        memo_store: "MemoStore | None" = None,
        counters: "PerfCounters | None" = None,
        on_result: "Callable[[ViewPolishResult], None] | None" = None,
    ) -> list["ViewPolishResult"]:
        """The continuous polish stage for every view (bit-identical on all
        backends; see :func:`~repro.parallel.viewsched.polish_level_serial`)."""
        raise NotImplementedError

    def run_tasks(self, fn: Any, payloads: Sequence[Any]) -> list[Any]:
        """Apply a picklable function to independent payloads, in order.

        The generic fan-out for work that carries its own data (no shared
        D̂ replica) — e.g. the symmetry detector's axis×order scoring
        sweep.  ``fn`` must be deterministic, so results are independent
        of the execution strategy.
        """
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any pools or shared resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every view inline in the calling process.

    Delegates straight to
    :func:`~repro.parallel.viewsched.refine_level_serial` — the same
    per-view loop the pool workers and the simulated ranks execute, so
    "serial" is the ground truth the other backends are measured against.
    """

    name = "serial"

    def run_level(
        self,
        volume_ft: "Array",
        view_fts: "Array",
        orientations: Sequence["Orientation"],
        modulations: Sequence["Array | None"] | None,
        level: "RefinementLevel",
        *,
        distance_computer: "DistanceComputer | None" = None,
        kernel: str = "batched",
        interpolation: str = "trilinear",
        max_slides: int = 8,
        refine_centers: bool = True,
        memo_store: "MemoStore | None" = None,
        counters: "PerfCounters | None" = None,
        prune: "PruneParams | None" = None,
        seed_basins: Sequence["tuple[Orientation, ...] | None"] | None = None,
        symmetry: "SymmetryRestriction | None" = None,
        on_result: "Callable[[ViewLevelResult], None] | None" = None,
    ) -> list["ViewLevelResult"]:
        from repro.parallel.viewsched import refine_level_serial

        return refine_level_serial(
            volume_ft,
            view_fts,
            orientations,
            modulations,
            level,
            distance_computer=distance_computer,
            kernel=kernel,
            interpolation=interpolation,
            max_slides=max_slides,
            refine_centers=refine_centers,
            memo_store=memo_store,
            counters=counters,
            prune=prune,
            seed_basins=seed_basins,
            symmetry=symmetry,
            on_result=on_result,
        )

    def run_polish(
        self,
        volume_ft: "Array",
        view_fts: "Array",
        orientations: Sequence["Orientation"],
        distances: "Sequence[float] | Array",
        modulations: Sequence["Array | None"] | None,
        *,
        distance_computer: "DistanceComputer | None" = None,
        interpolation: str = "trilinear",
        max_iters: int = 30,
        tol: float = 1e-8,
        damping: float = 1e-3,
        n_best: int = 1,
        seed_basins: Sequence["tuple[Orientation, ...] | None"] | None = None,
        memo_store: "MemoStore | None" = None,
        counters: "PerfCounters | None" = None,
        on_result: "Callable[[ViewPolishResult], None] | None" = None,
    ) -> list["ViewPolishResult"]:
        from repro.parallel.viewsched import polish_level_serial

        return polish_level_serial(
            volume_ft,
            view_fts,
            orientations,
            distances,
            modulations,
            distance_computer=distance_computer,
            interpolation=interpolation,
            max_iters=max_iters,
            tol=tol,
            damping=damping,
            n_best=n_best,
            seed_basins=seed_basins,
            memo_store=memo_store,
            counters=counters,
            on_result=on_result,
        )

    def run_tasks(self, fn: Any, payloads: Sequence[Any]) -> list[Any]:
        return [fn(p) for p in payloads]


class ProcessBackend(ExecutionBackend):
    """Fan views out over a shared-memory process pool.

    Owns (or adopts) a :class:`~repro.parallel.viewsched.ViewScheduler`:
    built from config it constructs the scheduler with the config's worker
    count, chunking, mp context and retry policy; handed a pre-built
    scheduler (``scheduler=``) it delegates without taking ownership —
    the caller keeps the pool's lifetime, exactly as the old
    ``OrientationRefiner.refine(scheduler=...)`` contract.
    """

    name = "process"

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        scheduler: "ViewScheduler | None" = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if scheduler is not None:
            self._scheduler = scheduler
            self._owned = False
            return
        if config is None:
            raise ConfigError("ProcessBackend needs a config or an explicit scheduler")
        from repro.parallel.viewsched import ViewScheduler

        self._scheduler = ViewScheduler(
            n_workers=config.parallel.n_workers,
            chunks_per_worker=config.parallel.chunks_per_worker,
            mp_context=config.parallel.mp_context,
            retry_policy=config.fault.retry_policy(),
            fault_plan=fault_plan,
        )
        self._owned = True

    @property
    def scheduler(self) -> "ViewScheduler":
        return self._scheduler

    @property
    def fault_log(self) -> Any:
        """The scheduler's fault log (chaos harness introspection)."""
        return self._scheduler.fault_log

    def run_level(
        self,
        volume_ft: "Array",
        view_fts: "Array",
        orientations: Sequence["Orientation"],
        modulations: Sequence["Array | None"] | None,
        level: "RefinementLevel",
        *,
        distance_computer: "DistanceComputer | None" = None,
        kernel: str = "batched",
        interpolation: str = "trilinear",
        max_slides: int = 8,
        refine_centers: bool = True,
        memo_store: "MemoStore | None" = None,
        counters: "PerfCounters | None" = None,
        prune: "PruneParams | None" = None,
        seed_basins: Sequence["tuple[Orientation, ...] | None"] | None = None,
        symmetry: "SymmetryRestriction | None" = None,
        on_result: "Callable[[ViewLevelResult], None] | None" = None,
    ) -> list["ViewLevelResult"]:
        return self._scheduler.run_level(
            volume_ft,
            view_fts,
            orientations,
            modulations,
            level,
            distance_computer=distance_computer,
            kernel=kernel,
            interpolation=interpolation,
            max_slides=max_slides,
            refine_centers=refine_centers,
            memo_store=memo_store,
            counters=counters,
            prune=prune,
            seed_basins=seed_basins,
            symmetry=symmetry,
            on_result=on_result,
        )

    def run_polish(
        self,
        volume_ft: "Array",
        view_fts: "Array",
        orientations: Sequence["Orientation"],
        distances: "Sequence[float] | Array",
        modulations: Sequence["Array | None"] | None,
        *,
        distance_computer: "DistanceComputer | None" = None,
        interpolation: str = "trilinear",
        max_iters: int = 30,
        tol: float = 1e-8,
        damping: float = 1e-3,
        n_best: int = 1,
        seed_basins: Sequence["tuple[Orientation, ...] | None"] | None = None,
        memo_store: "MemoStore | None" = None,
        counters: "PerfCounters | None" = None,
        on_result: "Callable[[ViewPolishResult], None] | None" = None,
    ) -> list["ViewPolishResult"]:
        return self._scheduler.run_polish(
            volume_ft,
            view_fts,
            orientations,
            distances,
            modulations,
            distance_computer=distance_computer,
            interpolation=interpolation,
            max_iters=max_iters,
            tol=tol,
            damping=damping,
            n_best=n_best,
            seed_basins=seed_basins,
            memo_store=memo_store,
            counters=counters,
            on_result=on_result,
        )

    def run_tasks(self, fn: Any, payloads: Sequence[Any]) -> list[Any]:
        return self._scheduler.run_tasks(fn, payloads)

    def close(self) -> None:
        if self._owned:
            self._scheduler.close()


class SimBackend(ExecutionBackend):
    """Run on the simulated distributed-memory cluster.

    Wraps :func:`~repro.parallel.prefine.parallel_refine` (SimComm fabric,
    slab-decomposed cooperative FFT, perf-model message costing).  The
    simulation is SPMD over the *whole* schedule — ranks deal views once,
    barrier per level, gather at the end — so it cannot be driven one
    level at a time from outside; :meth:`run_level` therefore raises, and
    :class:`~repro.engine.core.RefinementEngine` routes sim-configured
    runs through :meth:`run_refinement` instead.
    """

    name = "sim"

    def __init__(
        self,
        config: EngineConfig,
        *,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.config = config
        self.fault_plan = fault_plan

    def run_level(self, *args: Any, **kwargs: Any) -> list["ViewLevelResult"]:
        raise ConfigError(
            "the sim backend refines whole schedules on the simulated cluster; "
            "it cannot run a single level — use RefinementEngine.run() "
            "(or parallel_refine) with parallel.backend = 'sim'"
        )

    def run_polish(self, *args: Any, **kwargs: Any) -> list["ViewPolishResult"]:
        raise ConfigError(
            "the sim backend refines whole schedules on the simulated cluster; "
            "it cannot run the polish stage — use parallel.backend = 'serial' "
            "or 'process'"
        )

    def run_tasks(self, fn: Any, payloads: Sequence[Any]) -> list[Any]:
        raise ConfigError(
            "the sim backend models message costs, not real task execution; "
            "use parallel.backend = 'serial' or 'process' for task fan-out"
        )

    def run_refinement(
        self,
        views: "SimulatedViews",
        density: "DensityMap",
        *,
        machine: Any = None,
        orientation_file: str | None = None,
    ) -> "ParallelRefinementReport":
        """One full refinement iteration on the simulated cluster."""
        from repro.parallel.machine import SP2_LIKE
        from repro.parallel.prefine import parallel_refine

        cfg = self.config
        return parallel_refine(
            views,
            density,
            n_ranks=cfg.parallel.n_ranks,
            schedule=cfg.schedule.to_schedule(),
            machine=machine if machine is not None else SP2_LIKE,
            r_max=cfg.r_max,
            pad_factor=cfg.pad_factor,
            refine_centers=cfg.refine_centers,
            orientation_file=orientation_file,
            fault_plan=self.fault_plan,
            kernel=cfg.kernel.kernel,
        )


def make_backend(
    config: EngineConfig,
    *,
    fault_plan: "FaultPlan | None" = None,
    scheduler: "ViewScheduler | None" = None,
) -> ExecutionBackend:
    """The backend a config asks for, fully constructed.

    ``scheduler`` forces a :class:`ProcessBackend` adopting that pool
    (un-owned), preserving the legacy injection contract; ``fault_plan``
    threads a chaos plan into whichever backend supports one.
    """
    if scheduler is not None:
        return ProcessBackend(scheduler=scheduler)
    backend = config.parallel.backend
    if backend == "serial" and config.parallel.n_workers == 1:
        return SerialBackend()
    if backend == "serial":
        raise ConfigError(
            "parallel.backend = 'serial' requires parallel.n_workers = 1 "
            f"(got {config.parallel.n_workers}); use backend = 'process'"
        )
    if backend == "process":
        return ProcessBackend(config, fault_plan=fault_plan)
    if backend == "sim":
        return SimBackend(config, fault_plan=fault_plan)
    raise ConfigError(f"unknown backend {backend!r}")  # pragma: no cover
