"""Tests for the runtime array-contract layer (zero-cost-when-off decorator)."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.contracts import (
    ENV_FLAG,
    ArraySpec,
    ContractViolation,
    array_contract,
    contracts_enabled,
    spec,
)

REPO = Path(__file__).resolve().parents[1]


# -- zero cost when disabled -------------------------------------------------
def test_disabled_decorator_returns_function_unchanged():
    def fn(a):
        return a

    assert array_contract(a=spec(shape=(3,)), enabled=False)(fn) is fn


def test_env_flag_controls_default(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    assert not contracts_enabled()
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv(ENV_FLAG, value)
        assert contracts_enabled(), value
    monkeypatch.setenv(ENV_FLAG, "0")
    assert not contracts_enabled()


# -- shape checking ----------------------------------------------------------
def checked(**specs):
    ret = specs.pop("ret", None)

    def fn(a=None, b=None):
        return a

    return array_contract(enabled=True, ret=ret, **specs)(fn)


def test_exact_shape_violation_message_names_everything():
    fn = checked(a=spec(shape=(3, 3), allow_none=False))
    fn(a=np.eye(3))
    with pytest.raises(ContractViolation, match=r"fn\(a\): expected shape \(3, 3\), got \(4, 4\)"):
        fn(a=np.eye(4))


def test_symbol_binds_across_parameters():
    fn = checked(a=spec(shape=("n",)), b=spec(shape=("n",)))
    fn(a=np.zeros(5), b=np.zeros(5))
    with pytest.raises(ContractViolation, match=r"with n=5"):
        fn(a=np.zeros(5), b=np.zeros(6))


def test_symbol_binds_within_one_shape():
    fn = checked(a=spec(shape=("l", "l")))
    fn(a=np.zeros((4, 4)))
    with pytest.raises(ContractViolation):
        fn(a=np.zeros((4, 5)))


def test_shape_alternatives_accept_vector_or_stack():
    fn = checked(a=spec(shape=[("n",), (None, "n")]))
    fn(a=np.zeros(7))
    fn(a=np.zeros((3, 7)))
    with pytest.raises(ContractViolation, match=r"\(\*\) or \(\*, \*\)|\(n\)"):
        fn(a=np.zeros((2, 3, 7)))


def test_wildcard_dimension():
    fn = checked(a=spec(shape=(None, 3, 3)))
    fn(a=np.zeros((11, 3, 3)))
    with pytest.raises(ContractViolation):
        fn(a=np.zeros((11, 3, 4)))


# -- dtype / contiguity / None ----------------------------------------------
def test_dtype_kind_groups():
    fn = checked(a=spec(dtype="inexact"))
    fn(a=np.zeros(3, dtype=np.float32))
    fn(a=np.zeros(3, dtype=np.complex128))
    with pytest.raises(ContractViolation, match="expected dtype inexact, got int64"):
        fn(a=np.zeros(3, dtype=np.int64))


def test_exact_dtype_name():
    fn = checked(a=spec(dtype="float64"))
    fn(a=np.zeros(3))
    with pytest.raises(ContractViolation):
        fn(a=np.zeros(3, dtype=np.float32))


def test_contiguity_check():
    fn = checked(a=spec(contiguous=True))
    fn(a=np.zeros((4, 4)))
    with pytest.raises(ContractViolation, match="C-contiguous"):
        fn(a=np.zeros((4, 4)).T)


def test_allow_none_default_and_opt_out():
    checked(a=spec(shape=(3,)))(a=None)  # allow_none=True by default
    with pytest.raises(ContractViolation, match="got None"):
        checked(a=spec(shape=(3,), allow_none=False))(a=None)


def test_return_contract_shares_dims():
    @array_contract(enabled=True, a=spec(shape=("n",)), ret=ArraySpec(shape=("n",)))
    def roundtrip(a):
        return a[:-1]  # deliberately wrong length

    with pytest.raises(ContractViolation, match=r"roundtrip\(return\)"):
        roundtrip(np.zeros(4))


def test_unknown_parameter_name_fails_at_decoration():
    with pytest.raises(TypeError, match="unknown parameters"):

        @array_contract(enabled=True, nope=spec(shape=(3,)))
        def fn(a):
            return a


def test_violation_is_both_type_and_value_error():
    # Enforcement must not change which except/pytest.raises clauses match.
    assert issubclass(ContractViolation, TypeError)
    assert issubclass(ContractViolation, ValueError)


# -- the real kernel boundaries, enforced ------------------------------------
def test_kernel_contracts_catch_real_misuse_in_subprocess():
    """With REPRO_CHECK_CONTRACTS=1 the shipped decorators reject bad shapes."""
    code = (
        "import numpy as np\n"
        "from repro.align.distance import DistanceComputer\n"
        "from repro.analysis.contracts import ContractViolation\n"
        "from repro.fourier.slicing import extract_slice\n"
        "dc = DistanceComputer(8)\n"
        "dc.gather(np.zeros((8, 8), dtype=complex))\n"  # fine
        "try:\n"
        "    dc.gather(np.zeros((8, 4), dtype=complex))\n"
        "    raise SystemExit('gather accepted a non-square transform')\n"
        "except ContractViolation:\n"
        "    pass\n"
        "try:\n"
        "    extract_slice(np.zeros((8, 8, 8), dtype=complex), np.eye(4))\n"
        "    raise SystemExit('extract_slice accepted a 4x4 rotation')\n"
        "except ContractViolation:\n"
        "    pass\n"
        "print('contracts-enforced')\n"
    )
    env = dict(os.environ)
    env[ENV_FLAG] = "1"
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "contracts-enforced" in proc.stdout


def test_kernel_boundaries_carry_declared_specs_when_enabled():
    """The decoration-time switch: specs are attached only under the flag."""
    code = (
        "from repro.align.distance import DistanceComputer\n"
        "from repro.align.fused import MatchPlan\n"
        "from repro.fourier import slicing\n"
        "from repro.parallel import viewsched\n"
        "targets = [DistanceComputer.gather, DistanceComputer.distance_band,\n"
        "           MatchPlan.cut_bands, MatchPlan.distances,\n"
        "           slicing.extract_slice, slicing.extract_slices,\n"
        "           viewsched._attach_volume]\n"
        "flags = [hasattr(t, '__array_contract__') for t in targets]\n"
        "print('declared' if all(flags) else 'missing: %r' % flags)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env[ENV_FLAG] = "1"
    on = subprocess.run([sys.executable, "-c", code], env=env, capture_output=True, text=True)
    assert on.returncode == 0 and "declared" in on.stdout, on.stdout + on.stderr
    env[ENV_FLAG] = "0"
    off = subprocess.run([sys.executable, "-c", code], env=env, capture_output=True, text=True)
    assert off.returncode == 0 and "missing" in off.stdout  # bare functions when off
