"""Tests for the typed engine config: round-trips, validation, fingerprints,
and layered resolution with provenance."""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    ConfigError,
    EngineConfig,
    IterationConfig,
    KernelConfig,
    MemoConfig,
    ParallelConfig,
    ScheduleConfig,
    load_config,
    resolve_config,
)
from repro.refine.multires import default_schedule


# -- round-trips -------------------------------------------------------------
def test_dict_round_trip_is_identity():
    cfg = EngineConfig(
        kernel=KernelConfig(kernel="fused", gather_chunk=4096),
        schedule=ScheduleConfig(levels=((1.0, 1.0, 2, 1), (0.5, 0.25, 3, 2))),
        parallel=ParallelConfig(backend="process", n_workers=3),
        memo=MemoConfig(enabled=False, capacity=17),
        max_slides=3,
        refine_centers=False,
    )
    assert EngineConfig.from_dict(cfg.to_dict()) == cfg


def test_toml_round_trip(tmp_path):
    text = (
        "max_slides = 3\n"
        "[kernel]\n"
        'kernel = "fused"\n'
        "[schedule]\n"
        "levels = [[1.0, 1.0, 2, 1], [0.5, 0.5, 2, 1]]\n"
        "[parallel]\n"
        'backend = "process"\n'
        "n_workers = 2\n"
    )
    path = tmp_path / "run.toml"
    path.write_text(text)
    cfg = load_config(path)
    assert cfg.kernel.kernel == "fused"
    assert cfg.parallel.backend == "process"
    assert cfg.parallel.n_workers == 2
    assert cfg.max_slides == 3
    assert cfg.schedule.levels == ((1.0, 1.0, 2, 1), (0.5, 0.5, 2, 1))
    assert EngineConfig.from_dict(cfg.to_dict()) == cfg


def test_json_round_trip(tmp_path):
    data = {
        "kernel": {"kernel": "reference"},
        "schedule": {"levels": [[2.0, 2.0, 1, 1]]},
        "checkpoint": {"path": "run.ckpt", "resume": True},
        "refine_centers": False,
    }
    path = tmp_path / "run.json"
    path.write_text(json.dumps(data))
    cfg = load_config(path)
    assert cfg.kernel.kernel == "reference"
    assert cfg.checkpoint.path == "run.ckpt"
    assert cfg.checkpoint.resume is True
    assert cfg.refine_centers is False
    assert EngineConfig.from_dict(cfg.to_dict()) == cfg


def test_example_configs_all_load():
    import pathlib

    examples = pathlib.Path(__file__).resolve().parents[1] / "examples"
    paths = sorted(
        p for p in examples.iterdir() if p.suffix in (".toml", ".json")
    )
    assert len(paths) >= 3
    for path in paths:
        cfg = load_config(path)
        assert EngineConfig.from_dict(cfg.to_dict()) == cfg


def test_default_example_is_the_default_config():
    """engine_default.toml spells out the defaults — it must *be* them."""
    import pathlib

    examples = pathlib.Path(__file__).resolve().parents[1] / "examples"
    cfg = load_config(examples / "engine_default.toml")
    assert cfg.fingerprint() == EngineConfig().fingerprint()


# -- validation --------------------------------------------------------------
def test_config_error_is_value_error():
    assert issubclass(ConfigError, ValueError)


@pytest.mark.parametrize(
    "tree, fragment",
    [
        ({"kernel": {"bogus": 1}}, "kernel.bogus"),
        ({"warp_drive": True}, "warp_drive"),
        ({"parallel": {"n_workers": 1, "turbo": 9}}, "parallel.turbo"),
    ],
)
def test_unknown_fields_rejected_with_dotted_path(tree, fragment):
    with pytest.raises(ConfigError, match=fragment):
        EngineConfig.from_dict(tree)


@pytest.mark.parametrize(
    "tree",
    [
        {"kernel": {"kernel": "turbo"}},
        {"kernel": {"interpolation": "spline"}},
        {"parallel": {"backend": "mpi"}},
        {"parallel": {"n_workers": 0}},
        {"schedule": {"levels": []}},
        {"schedule": {"levels": [[-1.0]]}},
        {"checkpoint": {"resume": True}},  # resume requires a path
        {"memo": {"capacity": 0}},
        {"fault": {"max_attempts": 0}},
        {"max_slides": -1},
        {"weighting": "magic"},
        {"ctf_correction": "magic"},
    ],
)
def test_invalid_values_rejected(tree):
    with pytest.raises(ConfigError):
        EngineConfig.from_dict(tree)


def test_load_config_rejects_unknown_suffix(tmp_path):
    path = tmp_path / "run.yaml"
    path.write_text("kernel: fused\n")
    with pytest.raises(ConfigError):
        load_config(path)


# -- schedule bridge ---------------------------------------------------------
def test_schedule_round_trips_through_multires():
    sched = ScheduleConfig().to_schedule()
    assert ScheduleConfig.from_schedule(sched) == ScheduleConfig()


def test_default_schedule_matches_multires_default():
    assert ScheduleConfig().to_schedule() == default_schedule()


def test_abbreviated_schedule_rows_expand():
    cfg = ScheduleConfig.from_dict({"levels": [[1.0], [0.5, 0.25]]})
    assert cfg.levels == ((1.0, 1.0, 4, 1), (0.5, 0.25, 4, 1))


# -- fingerprints ------------------------------------------------------------
def test_fingerprint_stable_and_execution_invariant():
    """Execution strategy must not enter the digest — a 2-worker
    checkpoint resumes on an 8-core host, a chaos plan does not fork it."""
    base = EngineConfig().fingerprint()
    assert EngineConfig().fingerprint() == base
    variants = [
        EngineConfig(parallel=ParallelConfig(backend="process", n_workers=8)),
        EngineConfig(parallel=ParallelConfig(backend="sim", n_ranks=16)),
        EngineConfig.from_dict({"fault": {"max_attempts": 7}}),
        EngineConfig.from_dict({"checkpoint": {"path": "x.ckpt"}}),
        EngineConfig(kernel=KernelConfig(gather_chunk=1024)),
    ]
    for cfg in variants:
        assert cfg.fingerprint() == base


def test_fingerprint_sensitive_to_result_relevant_fields():
    base = EngineConfig().fingerprint()
    variants = [
        EngineConfig(kernel=KernelConfig(kernel="reference")),
        EngineConfig(schedule=ScheduleConfig(levels=((1.0, 1.0, 2, 1),))),
        EngineConfig(memo=MemoConfig(enabled=False)),
        EngineConfig(max_slides=1),
        EngineConfig(refine_centers=False),
        EngineConfig(r_max=5.0),
    ]
    prints = {cfg.fingerprint() for cfg in variants}
    assert base not in prints
    assert len(prints) == len(variants)


# -- layered resolution ------------------------------------------------------
def test_resolve_defaults_only():
    resolved = resolve_config(use_env=False)
    assert resolved.config == EngineConfig()
    assert set(resolved.provenance.values()) == {"default"}


def test_resolve_layering_and_provenance(tmp_path, monkeypatch):
    path = tmp_path / "run.toml"
    path.write_text('[kernel]\nkernel = "fused"\n[parallel]\nn_workers = 2\n')
    monkeypatch.setenv("REPRO_GATHER_CHUNK", "2048")
    resolved = resolve_config(
        path,
        base={"max_slides": 2},
        flags={"parallel.n_workers": 4, "parallel.backend": "process"},
    )
    cfg = resolved.config
    assert cfg.kernel.kernel == "fused"
    assert cfg.kernel.gather_chunk == 2048
    assert cfg.parallel.n_workers == 4  # flag beats file
    assert cfg.max_slides == 2
    prov = resolved.provenance
    assert prov["kernel.kernel"] == "file"
    assert prov["kernel.gather_chunk"] == "env"
    assert prov["parallel.n_workers"] == "flag"
    assert prov["max_slides"] == "default"  # base overlay keeps the label
    text = resolved.describe()
    assert f"engine fingerprint: {cfg.fingerprint()}" in text
    assert str(path) in text
    assert "[flag]" in text and "[file]" in text and "[env]" in text


def test_resolve_rejects_unknown_flag_path():
    with pytest.raises(ConfigError, match="parallel.warp"):
        resolve_config(use_env=False, flags={"parallel.warp": 1})


def test_resolve_rejects_invalid_file(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text('[kernel]\nkernel = "turbo"\n')
    with pytest.raises(ConfigError):
        resolve_config(path, use_env=False)


# -- merged() ----------------------------------------------------------------


def test_merged_partial_section_override():
    base = EngineConfig()
    out = base.merged({"prune": {"enabled": True}})
    assert out.prune.enabled is True
    # untouched prune fields keep their values; other sections untouched
    assert out.prune.shell_groups == base.prune.shell_groups
    assert out.kernel == base.kernel
    assert base.prune.enabled is False  # original unchanged (frozen)


def test_merged_scalars_replace_and_validate():
    base = EngineConfig(r_max=9.0)
    out = base.merged({"max_slides": 12, "r_max": 6.5})
    assert out.max_slides == 12 and out.r_max == 6.5
    with pytest.raises(ConfigError):
        base.merged({"nope": 1})
    with pytest.raises(ConfigError):
        base.merged({"prune": {"margin": -1.0}})


def test_merged_revalidates_cross_constraints():
    base = EngineConfig(kernel=KernelConfig(kernel="fused"))
    with pytest.raises(ConfigError):
        base.merged({"prune": {"enabled": True}})  # pruning needs batched


def test_merged_equals_from_dict_round_trip():
    base = EngineConfig()
    out = base.merged({"prune": {"enabled": True}, "max_slides": 4})
    rebuilt = EngineConfig.from_dict(out.to_dict())
    assert out == rebuilt and out.fingerprint() == rebuilt.fingerprint()


def test_fingerprint_covers_symmetry():
    """The symmetry section changes the search space, so it must fork the
    digest — a checkpoint written under one mode cannot resume under
    another (the refiner turns the mismatch into CheckpointConfigMismatch)."""
    base = EngineConfig().fingerprint()
    variants = [
        EngineConfig.from_dict({"symmetry": {"mode": "fixed:I"}}),
        EngineConfig.from_dict({"symmetry": {"mode": "fixed:C4"}}),
        EngineConfig.from_dict({"symmetry": {"mode": "detect"}}),
        EngineConfig.from_dict({"symmetry": {"mode": "detect", "detect_max_order": 8}}),
    ]
    prints = {cfg.fingerprint() for cfg in variants}
    assert base not in prints
    assert len(prints) == len(variants)


def test_symmetry_config_validation():
    from repro.engine.config import SymmetryConfig

    assert SymmetryConfig().mode == "none"
    assert not SymmetryConfig().enabled
    assert SymmetryConfig(mode="fixed:D7").fixed_group_name() == "D7"
    with pytest.raises(ConfigError):
        EngineConfig.from_dict({"symmetry": {"mode": "sideways"}})
    # the restriction rides the batched window path and real backends only
    with pytest.raises(ConfigError):
        EngineConfig.from_dict(
            {"symmetry": {"mode": "fixed:I"}, "kernel": {"kernel": "reference"}}
        )
    with pytest.raises(ConfigError):
        EngineConfig.from_dict(
            {"symmetry": {"mode": "detect"}, "parallel": {"backend": "sim"}}
        )


# -- iteration section (the outer determine-structure loop) -------------------
def test_iteration_config_defaults_and_round_trip():
    it = IterationConfig()
    assert (it.max_iterations, it.fsc_threshold) == (3, 0.5)
    assert it.min_improvement_angstrom == 0.0
    assert it.r_max_schedule == () and it.streaming is True

    cfg = EngineConfig.from_dict(
        {
            "iteration": {
                "max_iterations": 5,
                "fsc_threshold": 0.143,
                "min_improvement_angstrom": 0.25,
                "r_max_schedule": [10, 8, 6],
                "streaming": False,
            }
        }
    )
    # integer ladder entries normalize to floats; the round trip is identity
    assert cfg.iteration.r_max_schedule == (10.0, 8.0, 6.0)
    assert EngineConfig.from_dict(cfg.to_dict()) == cfg


@pytest.mark.parametrize(
    "tree",
    [
        {"iteration": {"max_iterations": 0}},
        {"iteration": {"fsc_threshold": 0.0}},
        {"iteration": {"fsc_threshold": 1.0}},
        {"iteration": {"min_improvement_angstrom": -0.1}},
        {"iteration": {"r_max_schedule": [8.0, -2.0]}},
        {"iteration": {"r_max_schedule": 8.0}},
        {"iteration": {"streaming": "yes"}},
        {"iteration": {"warp": 1}},
    ],
)
def test_iteration_invalid_values_rejected(tree):
    with pytest.raises(ConfigError):
        EngineConfig.from_dict(tree)


def test_iteration_r_max_ladder_semantics():
    """Iteration i refines with schedule[min(i, len-1)]; empty = run r_max."""
    ladder = IterationConfig(r_max_schedule=(10.0, 8.0))
    assert [ladder.r_max_for(i, 6.0) for i in range(4)] == [10.0, 8.0, 8.0, 8.0]
    assert IterationConfig().r_max_for(3, 6.0) == 6.0
    assert IterationConfig().r_max_for(0, None) is None


def test_fingerprint_covers_iteration():
    """Every iteration knob steers the loop's numbers (streaming included —
    it must match across a resume even though it never changes a bit)."""
    base = EngineConfig().fingerprint()
    variants = [
        EngineConfig(iteration=IterationConfig(max_iterations=7)),
        EngineConfig(iteration=IterationConfig(fsc_threshold=0.143)),
        EngineConfig(iteration=IterationConfig(min_improvement_angstrom=1.0)),
        EngineConfig(iteration=IterationConfig(r_max_schedule=(9.0,))),
        EngineConfig(iteration=IterationConfig(streaming=False)),
    ]
    prints = {cfg.fingerprint() for cfg in variants}
    assert base not in prints
    assert len(prints) == len(variants)


def test_multi_basin_config_may_checkpoint():
    """prune.top_k / polish.n_best > 1 plus a checkpoint path now validates:
    the basin set rides the checkpoint header (DESIGN.md §14)."""
    cfg = EngineConfig.from_dict(
        {
            "prune": {"enabled": True, "top_k": 2},
            "polish": {"enabled": True, "n_best": 2},
            "checkpoint": {"path": "run.ckpt"},
        }
    )
    assert cfg.prune.top_k == 2 and cfg.polish.n_best == 2
    assert cfg.checkpoint.path == "run.ckpt"
