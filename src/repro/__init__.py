"""repro — reproduction of "Orientation Refinement of Virus Structures with
Unknown Symmetry" (Ji, Marinescu, Zhang & Baker, IPPS 2003).

The package implements the paper's Fourier-domain, multi-resolution,
sliding-window orientation-refinement algorithm for cryo-TEM views of
particles with *unknown* symmetry, together with every substrate it needs:
projection/slicing machinery, CTF model, direct-Fourier 3D reconstruction,
synthetic specimens and micrographs, a simulated distributed-memory cluster
reproducing the paper's parallel design, and the evaluation harness that
regenerates each table and figure.

Quick start::

    from repro import (
        sindbis_like_phantom, simulate_views, OrientationRefiner,
        default_schedule, reconstruct_from_views,
    )
    truth = sindbis_like_phantom(32).normalized()
    views = simulate_views(truth, 40, snr=4.0, initial_angle_error_deg=2.0)
    refiner = OrientationRefiner(truth, r_max=12)
    result = refiner.refine(views)
    new_map = reconstruct_from_views(views.images, result.orientations)

See README.md for the architecture overview and DESIGN.md / EXPERIMENTS.md
for the experiment-by-experiment reproduction notes.
"""

from repro.geometry import (
    Orientation,
    euler_to_matrix,
    icosahedral_group,
    matrix_to_euler,
    random_orientations,
)
from repro.density import (
    DensityMap,
    asymmetric_phantom,
    cyclic_phantom,
    icosahedral_capsid_phantom,
    read_mrc,
    reo_like_phantom,
    sindbis_like_phantom,
    write_mrc,
)
from repro.ctf import CTFParams
from repro.imaging import project_map, simulate_views
from repro.align import fourier_distance, orientation_window
from repro.refine import (
    OrientationRefiner,
    default_schedule,
    detect_symmetry,
    read_orientation_file,
    write_orientation_file,
)
from repro.reconstruct import (
    StructureDeterminationResult,
    correlation_curve,
    determine_structure,
    reconstruct_from_views,
    structure_determination_loop,
)
from repro.parallel import parallel_refine, run_spmd

__version__ = "1.0.0"

__all__ = [
    "Orientation",
    "euler_to_matrix",
    "matrix_to_euler",
    "random_orientations",
    "icosahedral_group",
    "DensityMap",
    "sindbis_like_phantom",
    "reo_like_phantom",
    "asymmetric_phantom",
    "cyclic_phantom",
    "icosahedral_capsid_phantom",
    "read_mrc",
    "write_mrc",
    "CTFParams",
    "simulate_views",
    "project_map",
    "fourier_distance",
    "orientation_window",
    "OrientationRefiner",
    "default_schedule",
    "detect_symmetry",
    "read_orientation_file",
    "write_orientation_file",
    "reconstruct_from_views",
    "correlation_curve",
    "structure_determination_loop",
    "determine_structure",
    "StructureDeterminationResult",
    "parallel_refine",
    "run_spmd",
    "__version__",
]
