"""Property-based tests of the core mathematical invariants.

These are the contracts the whole pipeline rests on: the Fourier shift
theorem, the adjointness of slice extraction/insertion (which makes SIRT a
true gradient method), rotation-composition consistency of slices, and
norm preservation through the transform conventions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fourier import centered_fft2, centered_fftn
from repro.fourier.insertion import insert_slice
from repro.fourier.slicing import extract_slice
from repro.geometry import euler_to_matrix
from repro.imaging import phase_shift_ft, shift_image

angles = st.floats(min_value=0.0, max_value=360.0)
shifts = st.floats(min_value=-3.0, max_value=3.0)


@st.composite
def random_volume(draw, size=12):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    return rng.normal(size=(size, size, size))


@given(dx=shifts, dy=shifts, seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_shift_theorem_preserves_magnitude(dx, dy, seed):
    rng = np.random.default_rng(seed)
    img = rng.normal(size=(16, 16))
    ft = centered_fft2(img)
    shifted = phase_shift_ft(ft, dx, dy)
    assert np.allclose(np.abs(shifted), np.abs(ft), atol=1e-9)


@given(dx=shifts, dy=shifts, seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_shift_composition(dx, dy, seed):
    # band-limit the test image: taking .real between two sub-pixel shifts
    # loses the asymmetric Nyquist component of white noise, which would
    # break composition for reasons unrelated to the shift operator itself
    rng = np.random.default_rng(seed)
    img = rng.normal(size=(16, 16))
    ft = centered_fft2(img)
    from repro.fourier.shells import circular_mask

    ft[~circular_mask(16, 6.0)] = 0.0
    from repro.fourier import centered_ifft2

    img = centered_ifft2(ft).real
    once = shift_image(shift_image(img, dx, 0.0), 0.0, dy)
    both = shift_image(img, dx, dy)
    assert np.allclose(once, both, atol=1e-8)


@given(vol=random_volume(), t=angles, p=angles, o=angles)
@settings(max_examples=20, deadline=None)
def test_slice_in_plane_rotation_consistency(vol, t, p, o):
    """Changing omega only re-indexes the slice plane: the set of sampled 3D
    points is identical, so the band energy of the cut is omega-invariant
    up to interpolation differences."""
    ft = centered_fftn(vol)
    r1 = euler_to_matrix(t, p, o)
    r2 = euler_to_matrix(t, p, o + 90.0)
    c1 = extract_slice(ft, r1)
    c2 = extract_slice(ft, r2)
    from repro.fourier.shells import circular_mask

    band = circular_mask(vol.shape[0], vol.shape[0] // 2 - 2)
    e1 = float(np.sum(np.abs(c1[band]) ** 2))
    e2 = float(np.sum(np.abs(c2[band]) ** 2))
    if e1 > 1e-12:
        assert e2 == pytest.approx(e1, rel=0.35)


@given(seed=st.integers(0, 500), t=angles, p=angles, o=angles)
@settings(max_examples=15, deadline=None)
def test_extract_insert_adjointness(seed, t, p, o):
    """<A x, y> == <x, A^T y> for extraction A and insertion A^T — the
    property that makes the SIRT update a genuine gradient step."""
    l = 10
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(l, l, l)) + 1j * rng.normal(size=(l, l, l))
    y = rng.normal(size=(l, l)) + 1j * rng.normal(size=(l, l))
    r = euler_to_matrix(t, p, o)
    ax = extract_slice(x, r)  # A x
    accum = np.zeros((l, l, l), dtype=complex)
    weights = np.zeros((l, l, l))
    insert_slice(accum, weights, y, r, hermitian=False)  # A^T y
    lhs = np.vdot(y, ax)  # <y, A x>
    rhs = np.vdot(accum, x)  # <A^T y, x>
    scale = max(abs(lhs), abs(rhs), 1e-12)
    assert abs(lhs - rhs) / scale < 1e-9


@given(vol=random_volume())
@settings(max_examples=15, deadline=None)
def test_parseval_3d(vol):
    ft = centered_fftn(vol)
    assert np.sum(np.abs(ft) ** 2) / vol.size == pytest.approx(np.sum(vol**2), rel=1e-9)


@given(seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_distance_modulation_linearity(seed):
    """d(F, mod*C) with modulation folded into the cut equals the explicit
    elementwise product — the CTF-modulated matching contract."""
    from repro.align import DistanceComputer

    rng = np.random.default_rng(seed)
    f = rng.normal(size=(12, 12)) + 1j * rng.normal(size=(12, 12))
    c = rng.normal(size=(12, 12)) + 1j * rng.normal(size=(12, 12))
    mod = np.abs(rng.normal(size=(12, 12)))
    dc = DistanceComputer(12, r_max=5)
    via_param = dc.distance(f, c, cut_modulation=mod)
    explicit = dc.distance(f, c * mod)
    assert via_param == pytest.approx(explicit, rel=1e-12)


# -- sliding-window invariants (steps f–i) ----------------------------------
#
# The re-centering loop of refine/window.py carries three contracts the
# drivers rely on: it terminates within the slide budget, it never scans
# the same window center twice, and whenever it stops without exhausting
# the budget the final minimum is interior (not on a window face).


@st.composite
def window_problem(draw):
    seed = draw(st.integers(0, 10_000))
    step = draw(st.floats(min_value=0.2, max_value=2.0))
    half_steps = draw(st.integers(1, 3))
    max_slides = draw(st.integers(0, 4))
    rng = np.random.default_rng(seed)
    vol = rng.normal(size=(12, 12, 12))
    theta, phi, omega = rng.uniform(0.0, 360.0, size=3)
    return vol, (theta, phi, omega), step, half_steps, max_slides


def _run_window(problem):
    from repro.geometry import Orientation
    from repro.refine.window import sliding_window_search

    vol, (t, p, o), step, half_steps, max_slides = problem
    ft = centered_fftn(vol)
    view = extract_slice(ft, euler_to_matrix(t, p, o))
    center = Orientation(t + step / 3.0, p - step / 2.0, o + step / 4.0)
    return sliding_window_search(
        view, ft, center, step, half_steps=half_steps, max_slides=max_slides
    )


@given(problem=window_problem())
@settings(max_examples=25, deadline=None)
def test_window_recentering_terminates(problem):
    """The loop scans at most 1 + max_slides windows, whatever the data."""
    max_slides = problem[-1]
    res = _run_window(problem)
    assert 1 <= res.n_windows <= max_slides + 1
    assert len(res.centers) == res.n_windows


@given(problem=window_problem())
@settings(max_examples=25, deadline=None)
def test_window_never_revisits_a_center(problem):
    """Each re-centering moves to a new center: no cycles, no wasted scans."""
    res = _run_window(problem)
    seen = [c.as_tuple() for c in res.centers]
    assert len(seen) == len(set(seen))


@given(problem=window_problem())
@settings(max_examples=25, deadline=None)
def test_window_final_minimum_interior_unless_budget_exhausted(problem):
    """``final_on_edge`` is the *only* way the search ends on a face, and it
    can happen only when the slide budget ran out."""
    max_slides = problem[-1]
    res = _run_window(problem)
    if res.final_on_edge:
        assert res.n_windows == max_slides + 1
    if res.n_windows <= max_slides:
        assert not res.final_on_edge


@given(t=angles, p=angles, o=angles)
@settings(max_examples=30, deadline=None)
def test_slice_of_delta_is_constant_magnitude(t, p, o):
    """A centered delta has a flat transform; every central cut of it is
    flat too (where sampled inside the cube)."""
    l = 12
    vol = np.zeros((l, l, l))
    vol[l // 2, l // 2, l // 2] = 1.0
    ft = centered_fftn(vol)
    cut = extract_slice(ft, euler_to_matrix(t, p, o))
    from repro.fourier.shells import circular_mask

    band = circular_mask(l, l // 2 - 1)
    assert np.allclose(np.abs(cut[band]), 1.0, atol=1e-6)
