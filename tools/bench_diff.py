#!/usr/bin/env python
"""Diff two benchmark JSON snapshots (files or git revisions).

Both trajectory files this repo maintains — ``BENCH_kernels.json`` (kernel
and scheduler speedups) and ``BENCH_scenarios.json`` (the scenario-matrix
accuracy gate) — are committed alongside the code that produced them, so
"did this change regress a benchmark" is a diff between two snapshots.
This tool flattens either file into dotted metric paths and prints what
moved, classifying each change by the metric's good direction:

* lower-is-better — ``*_seconds``, ``*error*``, ``*_iters`` …
* higher-is-better — ``*speedup*``, ``*reduction*``, ``*ratio*``,
  ``*hit_rate*``, ``*per_second*`` …
* boolean gates — ``identical_results``, ``passed``,
  ``argmin_equal_mod_group`` — where True→False is always a regression.

Either side may be a JSON file path or a git revision; revisions resolve
through ``git show REV:FILE`` so CI can compare a regenerated snapshot
against the committed baseline::

    python tools/bench_diff.py HEAD BENCH_scenarios.json --file BENCH_scenarios.json

Timing metrics are noisy across runners, so regressions only fail the
run under ``--fail-on-regression`` (with ``--threshold`` percent slack);
the default mode is an informational report.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: substrings marking a metric where smaller numbers are better
_LOWER_BETTER = (
    "seconds",
    "error",
    "_iters",
    "candidates_evaluated",
    "deviation",
    "crossing_angstrom",
    "failed",
)
#: substrings marking a metric where larger numbers are better
_HIGHER_BETTER = (
    "speedup",
    "reduction",
    "ratio",
    "hit_rate",
    "per_second",
    "pruned",
    "passed",
)
#: structural/identity fields that are reported but never scored
_NEUTRAL = ("fingerprint", "size", "n_views", "r_max", "seed", "order", "step")


def load_side(spec: str, file_name: str) -> dict:
    """A benchmark JSON from a path, or from ``git show REV:file_name``."""
    path = Path(spec)
    if path.is_file():
        return json.loads(path.read_text())
    proc = subprocess.run(
        ["git", "show", f"{spec}:{file_name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"bench_diff: {spec!r} is neither a file nor a git revision "
            f"containing {file_name} ({proc.stderr.strip()})"
        )
    return json.loads(proc.stdout)


def flatten(data: object, prefix: str = "") -> dict[str, object]:
    """Nested dicts/lists to dotted scalar leaves.

    The scenarios file keys its per-workload records by position; they are
    re-keyed by scenario ``name`` so reordering the matrix doesn't read as
    every metric changing.
    """
    out: dict[str, object] = {}
    if isinstance(data, dict):
        for key, value in sorted(data.items()):
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(data, list):
        named = all(isinstance(v, dict) and "name" in v for v in data) and data
        if named:
            for v in data:
                out.update(flatten(v, f"{prefix}{v['name']}."))
        else:
            for i, v in enumerate(data):
                out.update(flatten(v, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = data
    return out


def direction(key: str) -> str:
    """'lower', 'higher' or 'neutral' for a dotted metric path."""
    leaf = key.rsplit(".", 1)[-1]
    if any(tok in leaf for tok in _NEUTRAL):
        return "neutral"
    if any(tok in leaf for tok in _LOWER_BETTER):
        return "lower"
    if any(tok in leaf for tok in _HIGHER_BETTER):
        return "higher"
    return "neutral"


def diff(
    old: dict,
    new: dict,
    threshold_pct: float,
    exclude: tuple[str, ...] = (),
) -> tuple[list[str], list[str]]:
    """(report lines, regression lines) between two flattened snapshots.

    ``exclude`` substrings drop matching dotted paths from the diff
    entirely — the CI gate excludes ``.timing.`` so wall-clock noise on
    shared runners can never fail the deterministic-metric comparison.
    """
    flat_old, flat_new = flatten(old), flatten(new)
    lines: list[str] = []
    regressions: list[str] = []
    for key in sorted(set(flat_old) | set(flat_new)):
        if any(tok in key for tok in exclude):
            continue
        a, b = flat_old.get(key), flat_new.get(key)
        if key not in flat_old:
            lines.append(f"  + {key} = {b}")
            continue
        if key not in flat_new:
            lines.append(f"  - {key} (was {a})")
            continue
        if a == b:
            continue
        if isinstance(a, bool) or isinstance(b, bool):
            line = f"  ! {key}: {a} -> {b}"
            lines.append(line)
            if a is True and b is not True and direction(key) != "lower":
                regressions.append(line)
            continue
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            delta = b - a
            pct = (delta / abs(a) * 100.0) if a else float("inf")
            sense = direction(key)
            worse = (sense == "lower" and delta > 0) or (sense == "higher" and delta < 0)
            flag = "REGRESSION" if worse and abs(pct) > threshold_pct else ""
            line = f"  {key}: {a} -> {b} ({pct:+.1f}%) {flag}".rstrip()
            lines.append(line)
            if flag:
                regressions.append(line)
            continue
        lines.append(f"  ~ {key}: {a!r} -> {b!r}")
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline: JSON file path or git revision")
    parser.add_argument("new", help="candidate: JSON file path or git revision")
    parser.add_argument(
        "--file",
        default="BENCH_kernels.json",
        help="file name resolved inside git revisions (default BENCH_kernels.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="percent change below which a worse-direction move is not a regression",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit nonzero when any metric regressed past the threshold",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="drop dotted metric paths containing this substring from the "
        "diff (repeatable; e.g. --exclude .timing. for wall-clock noise)",
    )
    args = parser.parse_args(argv)

    old = load_side(args.old, args.file)
    new = load_side(args.new, args.file)
    lines, regressions = diff(old, new, args.threshold, tuple(args.exclude))
    print(f"bench_diff {args.file}: {args.old} -> {args.new}")
    if not lines:
        print("  (no changes)")
    else:
        print("\n".join(lines))
    if regressions:
        print(f"\n{len(regressions)} regression(s) past {args.threshold:.0f}%:")
        print("\n".join(regressions))
        if args.fail_on_regression:
            return 1
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. `bench_diff ... | head`
        raise SystemExit(0)
