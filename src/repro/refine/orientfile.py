"""Orientation files (steps c and o): the plain-text exchange format.

One line per view::

    <id> <theta> <phi> <omega> <cx> <cy> [<score>]

Angles in degrees, centers in pixels, optional match score.  Comment lines
start with ``#``.  This mirrors the role of the parameter files the
production programs read in step (c) and write in step (o); the master node
of the parallel driver uses exactly these functions.
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation

__all__ = ["write_orientation_file", "read_orientation_file"]


def write_orientation_file(
    path: str,
    orientations: list[Orientation],
    scores: Array | list[float] | None = None,
    header: str | None = None,
) -> None:
    """Write the refined orientation set O^refined (step o)."""
    if scores is not None and len(scores) != len(orientations):
        raise ValueError("scores length must match orientations")
    with open(path, "w") as fh:
        fh.write("# id theta phi omega cx cy score\n")
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for i, o in enumerate(orientations):
            s = float(scores[i]) if scores is not None else 0.0
            fh.write(
                f"{i} {o.theta:.6f} {o.phi:.6f} {o.omega:.6f} {o.cx:.6f} {o.cy:.6f} {s:.8g}\n"
            )


def read_orientation_file(path: str) -> tuple[list[Orientation], Array]:
    """Read an orientation file (step c); returns ``(orientations, scores)``.

    Rows must appear in id order starting at 0 (the format is positional,
    like the production parameter files).
    """
    orientations: list[Orientation] = []
    scores: list[float] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) not in (6, 7):
                raise ValueError(f"{path}:{lineno}: expected 6 or 7 fields, got {len(parts)}")
            idx = int(parts[0])
            if idx != len(orientations):
                raise ValueError(f"{path}:{lineno}: ids must be consecutive from 0 (got {idx})")
            theta, phi, omega, cx, cy = (float(v) for v in parts[1:6])
            orientations.append(Orientation(theta, phi, omega, cx, cy))
            scores.append(float(parts[6]) if len(parts) == 7 else 0.0)
    return orientations, np.asarray(scores)
