"""E8 — §5 sliding-window observation.

"at 0.01° instead of 9 matchings (search range) we needed 15 for the
Sindbis virus" — the window slides when the minimum lands on its edge,
spending extra matchings but recovering orientations outside the initial
search domain.  We reproduce both effects on a live search: with sliding
the truth (placed outside the window) is recovered at the cost of extra
matchings; without sliding the search is stuck at the window edge.
"""

import pytest

from repro.pipeline import format_table
from repro.pipeline.experiments import run_sliding_window_experiment


def test_sliding_window_recovery(benchmark, save_artifact):
    out = benchmark.pedantic(
        lambda: run_sliding_window_experiment(size=32, offset_deg=5.0, step_deg=1.0, half_steps=2),
        rounds=1, iterations=1,
    )

    # truth is 5 deg away, the window covers +-2 deg
    assert out["offset_deg"] > out["window_half_width_deg"]
    # sliding recovers it, non-sliding cannot
    assert out["slide_error_deg"] < 1.0
    assert out["no_slide_error_deg"] > 2.0
    # the price: more matching operations (the paper's 9 -> 15 pattern)
    assert out["slide_matches"] > out["no_slide_matches"]
    assert out["n_windows"] >= 2

    ratio = out["slide_matches"] / out["no_slide_matches"]
    table = format_table(
        ["quantity", "no sliding", "with sliding"],
        [
            ["final error (deg)", f"{out['no_slide_error_deg']:.2f}", f"{out['slide_error_deg']:.2f}"],
            ["matching operations", int(out["no_slide_matches"]), int(out["slide_matches"])],
            ["windows evaluated", 1, int(out["n_windows"])],
        ],
        title="Sec. 5 sliding-window mechanism (truth 5 deg outside a +-2 deg window)",
    )
    table += (
        f"\n\nmatch-count ratio {ratio:.2f}x"
        "\npaper: 'at 0.01 instead of 9 matchings (search range) we needed 15'"
        " - the same mechanism, expressed per angle"
    )
    save_artifact("sliding_window.txt", table)
