"""RL012 fixture: exhaustive window evaluation looping without a prune bound."""

from __future__ import annotations


def refine_seeds_slow(view_band, volume_ft, seeds, plan):
    results = []
    for seed in seeds:
        results.append(
            sliding_window_search(
                None,
                volume_ft,
                seed,
                step_deg=0.1,
                plan=plan,
                view_band=view_band,
            )
        )
    return results


def sliding_window_search(view_ft, volume_ft, center, step_deg, plan, view_band):
    return (center, 0.0)
