"""The scenario matrix: the repo's accuracy-regression harness (DESIGN.md §12).

Every other gate guards *speed* or *bit-identity*; this one guards
*accuracy* across realistic workloads — the regimes the paper actually
ran: low-SNR cryo-EM views, per-micrograph defocus groups, symmetric and
asymmetric particles, and ab-initio-like starts far from the truth.  A
:class:`Scenario` is a declarative spec (phantom, box size, noise model,
CTF defocus groups, symmetry class, initial-orientation perturbation,
engine overrides, pass thresholds); the :class:`ScenarioRunner` executes
it through :class:`~repro.engine.core.RefinementEngine`, scores it with
:mod:`repro.refine.stats` (angular/center error, modulo the particle's
point group) and :mod:`repro.reconstruct.resolution` (half-map FSC 0.5
crossing), and emits a schema-versioned record into
``BENCH_scenarios.json``.

Paper-scale workloads (l=331/511) cannot run in CI; they enter the matrix
as :class:`CostModelScenario` entries instead — the analytic
:class:`~repro.parallel.perf_model.PerformanceModel` calibrated against
one Table-1 cell and asserted to reproduce the tables' structure
(calibration fidelity, monotonicity in matchings, total-hours envelope).

Determinism contract: every refinement scenario is fully seeded — the
dataset (phantom, projections, noise, boxing errors) derives from
``Scenario.seed`` and the initial-orientation perturbation from its *own*
``PerturbationSpec.seed``.  The two streams are deliberately independent
so the perturbation seed can be varied (hypothesis-tested) without
changing a single image byte.  Record comparison for resume-identity
drops only the wall-clock ``timing`` section and the execution-strategy
engine keys; everything else must match bit-for-bit.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.ctf.model import defocus_group_params
from repro.engine.config import EngineConfig, ScheduleConfig
from repro.engine.core import RefinementEngine
from repro.geometry.euler import Orientation
from repro.geometry.symmetry import SymmetryGroup, group_from_name
from repro.imaging.simulate import SimulatedViews, simulate_views
from repro.parallel.perf_model import (
    PaperWorkload,
    PerformanceModel,
    REO_WORKLOAD,
    SINDBIS_WORKLOAD,
)
from repro.pipeline.datasets import phantom_for
from repro.reconstruct.resolution import fsc_crossing
from repro.refine.stats import angular_errors, center_errors
from repro.utils import Timer, default_rng

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "CostModelScenario",
    "PerturbationSpec",
    "Scenario",
    "ScenarioRecord",
    "ScenarioRunner",
    "ScenarioThresholds",
    "default_matrix",
    "load_bench",
    "perturb_orientations",
    "symmetry_group_for",
    "validate_bench_payload",
    "write_bench",
]

#: Version of the ``BENCH_scenarios.json`` record schema.  Bump when a
#: record field is added, removed, or changes meaning; the validator
#: refuses payloads from another version.
#: v2: refinement metrics gained ``detected_symmetry_group`` and
#: ``candidate_reduction_factor`` (the symmetry-restricted search).
#: v3: new ``determination`` record type — the outer refine→reconstruct
#: loop run end to end, with its per-iteration FSC trajectory.
SCENARIO_SCHEMA_VERSION = 3

PERTURBATION_MODES = ("none", "gaussian", "uniform")

#: The mini three-level schedule most refinement scenarios run (1° →
#: 0.5° → 0.25°, center steps tracking, ±half_steps windows as listed).
MINI_LEVELS: tuple[tuple[float, float, int, int], ...] = (
    (1.0, 1.0, 3, 1),
    (0.5, 0.5, 2, 1),
    (0.25, 0.25, 2, 1),
)

#: Engine sections that describe *how* a run executes, never *what* it
#: computes — stripped from records before resume-identity comparison,
#: mirroring :meth:`EngineConfig.fingerprint`'s exclusions.
_EXECUTION_SECTIONS = ("parallel", "fault", "checkpoint")


def symmetry_group_for(name: str) -> SymmetryGroup | None:
    """The point group to score angular errors modulo, or ``None`` for C1.

    Accepted spellings: ``"C1"`` (asymmetric), ``"C<n>"``, ``"D<n>"``,
    ``"T"``, ``"O"``, ``"I"`` — the same names
    :func:`repro.geometry.symmetry.group_from_name` builds.
    """
    if name == "C1":
        return None
    try:
        return group_from_name(name)
    except ValueError:
        raise ValueError(f"unknown symmetry class {name!r}") from None


@dataclass(frozen=True)
class PerturbationSpec:
    """How a scenario's initial orientations are derived from the truth.

    ``gaussian`` jitters each Euler angle by N(0, angle_deg) — the classic
    "old method output" starting point; ``uniform`` draws each angle error
    from U(−angle_deg, +angle_deg) — the ab-initio-like start where the
    initial guess can sit anywhere in a wide box around the truth;
    ``none`` starts from the exact truth (centers still reset to zero, as
    the refinement never sees the true boxing error).  ``center_px``
    optionally jitters the initial center estimates the same way.

    The spec's ``seed`` drives an RNG *independent* of the dataset seed,
    so changing it regenerates the starts but not one pixel of the images.
    """

    mode: str = "gaussian"
    angle_deg: float = 2.0
    center_px: float = 0.0
    seed: int = 101

    def __post_init__(self) -> None:
        if self.mode not in PERTURBATION_MODES:
            raise ValueError(
                f"perturbation.mode must be one of {PERTURBATION_MODES}, "
                f"got {self.mode!r}"
            )
        if self.angle_deg < 0 or self.center_px < 0:
            raise ValueError("perturbation magnitudes must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "angle_deg": self.angle_deg,
            "center_px": self.center_px,
            "seed": self.seed,
        }


def perturb_orientations(
    orientations: Sequence[Orientation], spec: PerturbationSpec
) -> list[Orientation]:
    """Initial-orientation set for a scenario: truth jittered per ``spec``.

    Draw order is fixed (per orientation: θ, φ, ω, then cx, cy when
    ``center_px > 0``) so the gaussian mode reproduces the historical
    figure-experiment perturbation stream bit-for-bit.
    """
    if spec.mode == "none":
        return [o.with_center(0.0, 0.0) for o in orientations]
    rng = default_rng(spec.seed)
    if spec.mode == "gaussian":
        def draw(scale: float) -> float:
            return float(rng.normal(0.0, scale))
    else:  # uniform
        def draw(scale: float) -> float:
            return float(rng.uniform(-scale, scale))
    out: list[Orientation] = []
    for o in orientations:
        theta = o.theta + draw(spec.angle_deg)
        phi = o.phi + draw(spec.angle_deg)
        omega = o.omega + draw(spec.angle_deg)
        cx = draw(spec.center_px) if spec.center_px > 0 else 0.0
        cy = draw(spec.center_px) if spec.center_px > 0 else 0.0
        out.append(Orientation(theta, phi, omega, cx, cy))
    return out


@dataclass(frozen=True)
class ScenarioThresholds:
    """Per-scenario pass criteria; ``None`` disables a check.

    Thresholds are *regression pins*: each bound is the measured value of
    the current implementation plus ~20–50% headroom for cross-platform
    numeric drift, not an absolute claim about convergence.  A threshold
    trip therefore means "a change degraded accuracy on this workload",
    exactly like a bench regression means "a change degraded speed".
    Wall-clock is deliberately *not* a threshold here (it would make pass
    status machine-dependent); the suite's time budget is asserted by the
    ``tools/check.py`` stage instead.
    """

    max_median_angular_error_deg: float | None = None
    max_p90_angular_error_deg: float | None = None
    max_median_center_error_px: float | None = None
    max_fsc_crossing_angstrom: float | None = None
    min_improvement_ratio: float | None = None
    # cost-model scenarios only
    max_total_hours: float | None = None
    min_total_hours: float | None = None
    max_calibration_rel_error: float | None = None

    def to_dict(self) -> dict[str, Any]:
        out = {
            "max_median_angular_error_deg": self.max_median_angular_error_deg,
            "max_p90_angular_error_deg": self.max_p90_angular_error_deg,
            "max_median_center_error_px": self.max_median_center_error_px,
            "max_fsc_crossing_angstrom": self.max_fsc_crossing_angstrom,
            "min_improvement_ratio": self.min_improvement_ratio,
            "max_total_hours": self.max_total_hours,
            "min_total_hours": self.min_total_hours,
            "max_calibration_rel_error": self.max_calibration_rel_error,
        }
        return {k: v for k, v in out.items() if v is not None}


#: (threshold field, metric key, direction) — ``"max"`` fails when the
#: metric exceeds the bound, ``"min"`` when it falls short.
_THRESHOLD_CHECKS: tuple[tuple[str, str, str], ...] = (
    ("max_median_angular_error_deg", "median_angular_error_deg", "max"),
    ("max_p90_angular_error_deg", "p90_angular_error_deg", "max"),
    ("max_median_center_error_px", "median_center_error_px", "max"),
    ("max_fsc_crossing_angstrom", "fsc_crossing_angstrom", "max"),
    ("min_improvement_ratio", "improvement_ratio", "min"),
    ("max_total_hours", "total_hours", "max"),
    ("min_total_hours", "total_hours", "min"),
    ("max_calibration_rel_error", "calibration_rel_error", "max"),
)


def evaluate_thresholds(
    metrics: Mapping[str, Any], thresholds: ScenarioThresholds
) -> list[str]:
    """Human-readable failure strings for every tripped threshold."""
    failures: list[str] = []
    for t_field, m_key, direction in _THRESHOLD_CHECKS:
        bound = getattr(thresholds, t_field)
        if bound is None:
            continue
        if m_key not in metrics:
            failures.append(f"{t_field}: metric {m_key!r} missing from record")
            continue
        value = float(metrics[m_key])
        if direction == "max" and value > bound:
            failures.append(f"{t_field}: {value:.6g} > {bound:.6g}")
        elif direction == "min" and value < bound:
            failures.append(f"{t_field}: {value:.6g} < {bound:.6g}")
    return failures


@dataclass(frozen=True)
class Scenario:
    """One refinement workload of the accuracy matrix.

    The spec is declarative and fully seeded: phantom ``kind``/``size``
    (as in :func:`repro.pipeline.datasets.phantom_for`), view count, SNR
    (``inf`` = noiseless; realized exactly when ``exact_snr``), CTF
    defocus groups (empty = no CTF), the particle's point-group symmetry
    (scoring is modulo this group), the initial-orientation perturbation,
    per-view boxing error, matching knobs, an optional partial
    ``EngineConfig`` override dict, and the pass thresholds.
    """

    name: str
    kind: str = "asymmetric"
    size: int = 24
    n_views: int = 6
    snr: float = math.inf
    exact_snr: bool = True
    defocus_groups: tuple[float, ...] = ()
    symmetry: str = "C1"
    perturbation: PerturbationSpec = field(default_factory=PerturbationSpec)
    center_sigma_px: float = 0.0
    seed: int = 3
    r_max: float = 8.0
    max_slides: int = 4
    schedule_levels: tuple[tuple[float, float, int, int], ...] = MINI_LEVELS
    engine: Mapping[str, Any] = field(default_factory=dict)
    thresholds: ScenarioThresholds = field(default_factory=ScenarioThresholds)
    #: > 0 runs the full structure-determination loop for that many outer
    #: iterations (a ``determination`` record with an FSC trajectory)
    #: instead of a single refinement against the ground-truth map.
    loop_iterations: int = 0

    def __post_init__(self) -> None:
        if self.loop_iterations < 0:
            raise ValueError("loop_iterations must be >= 0 (0 = single refinement)")
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.size < 8:
            raise ValueError("scenario box size must be >= 8")
        if self.n_views < 2:
            raise ValueError("need >= 2 views (the FSC splits odd/even)")
        if self.snr <= 0:
            raise ValueError("snr must be positive (inf = noiseless)")
        if any(d <= 0 for d in self.defocus_groups):
            raise ValueError("defocus groups must be positive (Å underfocus)")
        if self.center_sigma_px < 0:
            raise ValueError("center_sigma_px must be non-negative")
        symmetry_group_for(self.symmetry)  # raises on an unknown class

    def spec_dict(self) -> dict[str, Any]:
        """The JSON-safe spec half of this scenario's record."""
        return {
            "kind": self.kind,
            "size": self.size,
            "n_views": self.n_views,
            "snr": None if math.isinf(self.snr) else self.snr,
            "exact_snr": self.exact_snr,
            "defocus_groups": list(self.defocus_groups),
            "symmetry": self.symmetry,
            "perturbation": self.perturbation.to_dict(),
            "center_sigma_px": self.center_sigma_px,
            "seed": self.seed,
            "r_max": self.r_max,
            "max_slides": self.max_slides,
            "schedule_levels": [list(level) for level in self.schedule_levels],
            "engine": _jsonify(self.engine),
            "loop_iterations": self.loop_iterations,
        }


@dataclass(frozen=True)
class CostModelScenario:
    """A paper-scale workload priced by the calibrated analytic model.

    The model is calibrated once against a known Table-1 cell (Sindbis
    level-0 refinement = 4053 s on the SP2-like machine) and then asked to
    reproduce the table for ``workload``; the record checks calibration
    fidelity, monotonicity of refinement time in the per-view matching
    count, and a total-hours envelope around the paper's figures.
    """

    name: str
    workload: str = "sindbis"
    calibrate_level: int = 0
    calibrate_seconds: float = 4053.0
    thresholds: ScenarioThresholds = field(default_factory=ScenarioThresholds)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.workload not in ("sindbis", "reo"):
            raise ValueError(f"workload must be 'sindbis' or 'reo', got {self.workload!r}")
        if not 0 <= self.calibrate_level < len(SINDBIS_WORKLOAD.levels):
            raise ValueError("calibrate_level out of range")
        if self.calibrate_seconds <= 0:
            raise ValueError("calibrate_seconds must be positive")

    def paper_workload(self) -> PaperWorkload:
        return SINDBIS_WORKLOAD if self.workload == "sindbis" else REO_WORKLOAD

    def spec_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "image_size": self.paper_workload().image_size,
            "n_views": self.paper_workload().n_views,
            "calibrate_level": self.calibrate_level,
            "calibrate_seconds": self.calibrate_seconds,
        }


def _jsonify(value: Any) -> Any:
    """Recursively coerce a spec fragment into JSON-native types."""
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


@dataclass
class ScenarioRecord:
    """One scored entry of ``BENCH_scenarios.json``.

    ``spec``/``metrics``/``thresholds``/``failures``/``passed``/
    ``fingerprint`` are deterministic functions of the scenario and the
    code; ``perf`` (counter totals) is deterministic for a fixed execution
    strategy but not across them; ``timing`` is wall-clock and never
    comparable.  :meth:`comparable` keeps exactly the deterministic core.
    """

    name: str
    type: str  # "refinement" | "cost_model"
    spec: dict[str, Any]
    metrics: dict[str, Any]
    thresholds: dict[str, Any]
    failures: list[str]
    passed: bool
    fingerprint: str
    perf: dict[str, Any] = field(default_factory=dict)
    timing: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "type": self.type,
            "spec": self.spec,
            "metrics": self.metrics,
            "thresholds": self.thresholds,
            "failures": list(self.failures),
            "passed": self.passed,
            "fingerprint": self.fingerprint,
            "perf": self.perf,
            "timing": self.timing,
        }

    def comparable(self) -> dict[str, Any]:
        """The resume-identity view: no wall clock, no execution strategy.

        A scenario killed at a level boundary and resumed from its
        checkpoint must produce a record identical under this view to an
        uninterrupted run (the checkpoint-section override and the perf
        counters of the skipped levels are execution detail, mirroring
        what :meth:`EngineConfig.fingerprint` excludes).
        """
        out = self.to_dict()
        out.pop("timing")
        out.pop("perf")
        engine = dict(out["spec"].get("engine", {}))
        for section in _EXECUTION_SECTIONS:
            engine.pop(section, None)
        out["spec"] = {**out["spec"], "engine": engine}
        return out


def _candidate_reduction(run: Any, scenario: Scenario) -> float:
    """Measured |full grid| / |AU grid| for the run's applied restriction.

    1.0 when no restriction was applied (symmetry off, or detection found
    C1).  Evaluated at the scenario's coarsest scheduled resolution — the
    level where the global candidate grid (and therefore the |G|-fold cut)
    lives.
    """
    if run.symmetry_order <= 1 or not run.symmetry_group:
        return 1.0
    from repro.refine.restrict import SymmetryRestriction

    coarsest = max(level[0] for level in scenario.schedule_levels)
    restriction = SymmetryRestriction.from_group(group_from_name(run.symmetry_group))
    return float(restriction.reduction_factor(coarsest))


class ScenarioRunner:
    """Executes scenarios through the engine and scores them.

    Stateless between scenarios: every run rebuilds its dataset from the
    spec's seeds, so records are reproducible in isolation and the matrix
    order never matters.
    """

    def __init__(self, base_config: EngineConfig | None = None) -> None:
        self.base_config = base_config if base_config is not None else EngineConfig()

    # -- dataset & config ----------------------------------------------------
    def dataset(self, scenario: Scenario) -> SimulatedViews:
        """The simulated views for a scenario, perturbation applied.

        The dataset stream (orientations, projections, boxing errors,
        noise) is driven by ``scenario.seed``; the initial-orientation
        perturbation by ``scenario.perturbation.seed`` — independent by
        construction.
        """
        density = phantom_for(scenario.kind, scenario.size, seed=scenario.seed)
        ctf = (
            defocus_group_params(scenario.defocus_groups, scenario.n_views)
            if scenario.defocus_groups
            else None
        )
        views = simulate_views(
            density,
            scenario.n_views,
            snr=scenario.snr,
            ctf=ctf,
            center_sigma_px=scenario.center_sigma_px,
            initial_angle_error_deg=0.0,
            seed=scenario.seed,
            exact_snr=scenario.exact_snr,
        )
        views.initial_orientations = perturb_orientations(
            views.true_orientations, scenario.perturbation
        )
        return views

    def engine_config(self, scenario: Scenario) -> EngineConfig:
        """The base config specialized to a scenario, overrides merged."""
        cfg = replace(
            self.base_config,
            schedule=ScheduleConfig(levels=scenario.schedule_levels),
            r_max=scenario.r_max,
            max_slides=scenario.max_slides,
        )
        if scenario.engine:
            cfg = cfg.merged(scenario.engine)
        return cfg

    # -- execution -----------------------------------------------------------
    def run_scenario(self, scenario: Scenario, *, fault_plan: Any = None) -> ScenarioRecord:
        """Run one refinement scenario end to end and score it.

        ``fault_plan`` (a :class:`repro.faults.plan.FaultPlan`) reaches the
        engine unchanged — the resume tests kill a run at a level barrier
        through it.  Injected faults propagate; no record is produced for
        a killed run.
        """
        views = self.dataset(scenario)
        config = self.engine_config(scenario)
        engine = RefinementEngine(config)
        timer = Timer().start()
        run = engine.run(
            views,
            views.ground_truth,
            initial_orientations=views.initial_orientations,
            fault_plan=fault_plan,
        )
        wall = timer.stop()

        group = symmetry_group_for(scenario.symmetry)
        refined = run.orientations
        truth = views.true_orientations
        errors = angular_errors(refined, truth, symmetry=group)
        initial_errors = angular_errors(views.initial_orientations, truth, symmetry=group)
        c_errors = center_errors(refined, truth)
        median = float(np.median(errors))
        initial_median = float(np.median(initial_errors))
        metrics: dict[str, Any] = {
            "n_views": len(views),
            "median_angular_error_deg": median,
            "p90_angular_error_deg": float(np.percentile(errors, 90)),
            "initial_median_angular_error_deg": initial_median,
            "improvement_ratio": initial_median / max(median, 1e-12),
            "median_center_error_px": float(np.median(c_errors)),
            "fsc_crossing_angstrom": float(
                fsc_crossing(
                    views.images,
                    refined,
                    apix=views.apix,
                    pad_factor=config.pad_factor,
                    ctf_params=views.ctf_params,
                )
            ),
            "initial_fsc_crossing_angstrom": float(
                fsc_crossing(
                    views.images,
                    views.initial_orientations,
                    apix=views.apix,
                    pad_factor=config.pad_factor,
                    ctf_params=views.ctf_params,
                )
            ),
            # Symmetry-restricted search (DESIGN.md §13): the group the
            # engine restricted by (None = symmetry handling off, "C1" =
            # detection ran and found nothing) and the measured |full
            # grid| / |asymmetric-unit grid| ratio at the coarsest
            # scheduled resolution (1.0 when no restriction applied).
            "detected_symmetry_group": run.symmetry_group,
            "candidate_reduction_factor": _candidate_reduction(run, scenario),
        }
        failures = evaluate_thresholds(metrics, scenario.thresholds)

        perf: dict[str, Any] = {"backend": run.backend}
        if run.perf is not None:
            perf.update(
                window_calls=run.perf.window_calls,
                candidates=run.perf.candidates,
                evaluated=run.perf.evaluated,
                pruned=run.perf.pruned,
                memo_lookups=run.perf.memo_lookups,
                memo_hits=run.perf.memo_hits,
                memo_hit_rate=run.perf.memo_hit_rate(),
                polish_calls=run.perf.polish_calls,
            )
        timing = {"wall_seconds": wall}
        if run.perf is not None and run.perf.level_seconds:
            timing["level_seconds"] = {
                label: float(s) for label, s in run.perf.level_seconds.items()
            }

        return ScenarioRecord(
            name=scenario.name,
            type="refinement",
            spec=scenario.spec_dict(),
            metrics=metrics,
            thresholds=scenario.thresholds.to_dict(),
            failures=failures,
            passed=not failures,
            fingerprint=run.fingerprint,
            perf=perf,
            timing=timing,
        )

    def run_determination(
        self, scenario: Scenario, *, fault_plan: Any = None
    ) -> ScenarioRecord:
        """Run the outer refine→reconstruct loop end to end and score it.

        Unlike :meth:`run_scenario`, the loop never sees the ground-truth
        map: iteration 0 seeds from a direct-Fourier reconstruction at the
        *perturbed* initial orientations, so the record measures whether
        alternating steps B and C actually pulls both the orientations and
        the map toward the truth.  The per-iteration FSC-crossing
        trajectory is the record's headline metric.
        """
        from repro.reconstruct.direct_fourier import reconstruct_from_views
        from repro.reconstruct.iterate import determine_structure

        views = self.dataset(scenario)
        config = self.engine_config(scenario)
        config = replace(
            config,
            iteration=replace(
                config.iteration, max_iterations=scenario.loop_iterations
            ),
        )
        timer = Timer().start()
        initial_map = reconstruct_from_views(
            views.images,
            views.initial_orientations,
            apix=views.apix,
            pad_factor=config.pad_factor,
            ctf_params=views.ctf_params,
        )
        initial_fsc = float(
            fsc_crossing(
                views.images,
                views.initial_orientations,
                apix=views.apix,
                pad_factor=config.pad_factor,
                ctf_params=views.ctf_params,
            )
        )
        result = determine_structure(views, initial_map, config, fault_plan=fault_plan)
        wall = timer.stop()

        group = symmetry_group_for(scenario.symmetry)
        truth = views.true_orientations
        errors = angular_errors(result.final_orientations, truth, symmetry=group)
        initial_errors = angular_errors(
            views.initial_orientations, truth, symmetry=group
        )
        median = float(np.median(errors))
        initial_median = float(np.median(initial_errors))
        metrics: dict[str, Any] = {
            "n_views": len(views),
            "iterations_run": len(result.history),
            "stop_reason": result.stop_reason,
            "fsc_trajectory_angstrom": [float(r) for r in result.resolutions],
            "fsc_crossing_angstrom": float(result.resolutions[-1]),
            "initial_fsc_crossing_angstrom": initial_fsc,
            "mean_distance_trajectory": [
                float(rec.mean_distance) for rec in result.history
            ],
            "median_angular_error_deg": median,
            "p90_angular_error_deg": float(np.percentile(errors, 90)),
            "initial_median_angular_error_deg": initial_median,
            "improvement_ratio": initial_median / max(median, 1e-12),
        }
        failures = evaluate_thresholds(metrics, scenario.thresholds)

        perf: dict[str, Any] = {"backend": config.parallel.backend}
        if result.perf is not None:
            perf.update(
                window_calls=result.perf.window_calls,
                candidates=result.perf.candidates,
                evaluated=result.perf.evaluated,
                pruned=result.perf.pruned,
                memo_lookups=result.perf.memo_lookups,
                memo_hits=result.perf.memo_hits,
                memo_hit_rate=result.perf.memo_hit_rate(),
                polish_calls=result.perf.polish_calls,
            )
        return ScenarioRecord(
            name=scenario.name,
            type="determination",
            spec=scenario.spec_dict(),
            metrics=metrics,
            thresholds=scenario.thresholds.to_dict(),
            failures=failures,
            passed=not failures,
            fingerprint=config.fingerprint(),
            perf=perf,
            timing={"wall_seconds": wall},
        )

    def run_cost_model(self, scenario: CostModelScenario) -> ScenarioRecord:
        """Price one paper-scale workload with the calibrated model."""
        timer = Timer().start()
        model = PerformanceModel()
        calib_level = SINDBIS_WORKLOAD.levels[scenario.calibrate_level]
        model.calibrate(
            SINDBIS_WORKLOAD, scenario.calibrate_level, scenario.calibrate_seconds
        )
        recomputed = model.time_refinement_level(SINDBIS_WORKLOAD, calib_level)
        rel_err = abs(recomputed - scenario.calibrate_seconds) / scenario.calibrate_seconds

        workload = scenario.paper_workload()
        rows = model.predict_table(workload)
        levels = [
            {
                "angular_resolution_deg": row["angular_resolution_deg"],
                "matchings_per_view": row["search_range"],
                "refinement_seconds": row["Orientation refinement"],
                "total_seconds": row["Total"],
            }
            for row in rows
        ]
        by_matchings = sorted(levels, key=lambda r: r["matchings_per_view"])
        monotone = all(
            a["refinement_seconds"] <= b["refinement_seconds"]
            for a, b in zip(by_matchings, by_matchings[1:])
        )
        total_seconds = float(sum(row["Total"] for row in rows))
        metrics: dict[str, Any] = {
            "levels": levels,
            "refinement_seconds_total": float(
                sum(row["Orientation refinement"] for row in rows)
            ),
            "total_seconds": total_seconds,
            "total_hours": total_seconds / 3600.0,
            "calibration_rel_error": float(rel_err),
            "refinement_monotone_in_matchings": monotone,
            "flops_per_match_sample": float(model.flops_per_match_sample),
        }
        failures = evaluate_thresholds(metrics, scenario.thresholds)
        if not monotone:
            failures.append(
                "refinement_monotone_in_matchings: refinement time must not "
                "decrease as matchings per view grow"
            )
        return ScenarioRecord(
            name=scenario.name,
            type="cost_model",
            spec=scenario.spec_dict(),
            metrics=metrics,
            thresholds=scenario.thresholds.to_dict(),
            failures=failures,
            passed=not failures,
            fingerprint=f"perf-model:{workload.name}",
            perf={},
            timing={"wall_seconds": timer.stop()},
        )

    def run(self, scenario: "Scenario | CostModelScenario") -> ScenarioRecord:
        if isinstance(scenario, Scenario):
            if scenario.loop_iterations > 0:
                return self.run_determination(scenario)
            return self.run_scenario(scenario)
        return self.run_cost_model(scenario)

    def run_matrix(
        self, scenarios: Sequence["Scenario | CostModelScenario"]
    ) -> list[ScenarioRecord]:
        """Run every scenario, in order; duplicate names are rejected."""
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names in matrix: {names}")
        return [self.run(s) for s in scenarios]


# -- the default matrix ------------------------------------------------------

def default_matrix() -> tuple["Scenario | CostModelScenario", ...]:
    """The gated accuracy matrix (DESIGN.md §12 documents each entry).

    Thresholds are measured values of the current implementation plus
    headroom (see :class:`ScenarioThresholds`); the ``clean`` scenario's
    p90 bound doubles as the degraded-kernel tripwire — deflating the
    prune bound past its safe margin must fail it.
    """
    return (
        # The bit-identity workhorse: noiseless asymmetric particle,
        # moderate start error, boxing error, pruning enabled (pruned
        # search is bit-identical to exhaustive, so these thresholds pin
        # both paths at once).
        Scenario(
            name="clean",
            kind="asymmetric",
            snr=math.inf,
            center_sigma_px=0.5,
            perturbation=PerturbationSpec(mode="gaussian", angle_deg=2.0, seed=101),
            engine={"prune": {"enabled": True}},
            thresholds=ScenarioThresholds(
                max_median_angular_error_deg=3.3,
                max_p90_angular_error_deg=3.8,
                max_median_center_error_px=0.35,
                max_fsc_crossing_angstrom=12.8,
                min_improvement_ratio=1.1,
            ),
        ),
        # The Rangan–Greengard regime: SNR 0.5 over the whole box.  At
        # this box size refinement holds rather than improves; the pin
        # guards against *further* degradation.
        Scenario(
            name="low_snr",
            kind="asymmetric",
            snr=0.5,
            r_max=6.0,
            center_sigma_px=0.5,
            perturbation=PerturbationSpec(mode="gaussian", angle_deg=2.0, seed=101),
            thresholds=ScenarioThresholds(
                max_median_angular_error_deg=7.5,
                max_p90_angular_error_deg=16.0,
            ),
        ),
        # Two defocus groups dealt round-robin across the views: the
        # matcher must stay accurate under per-view CTF correction.
        Scenario(
            name="defocus_groups",
            kind="asymmetric",
            n_views=8,
            snr=5.0,
            defocus_groups=(9000.0, 15000.0),
            r_max=6.0,
            center_sigma_px=0.3,
            perturbation=PerturbationSpec(mode="gaussian", angle_deg=2.0, seed=101),
            thresholds=ScenarioThresholds(
                max_median_angular_error_deg=4.5,
                max_p90_angular_error_deg=6.5,
            ),
        ),
        # A symmetric particle: errors are only defined modulo the
        # icosahedral group, which is exactly how they are scored.  The
        # engine runs with symmetry *detection* in the loop: it must find
        # the icosahedral group on the current map, restrict the search to
        # one asymmetric unit, and still hit the same accuracy bars — the
        # record's candidate_reduction_factor documents the |G|-fold cut.
        Scenario(
            name="icosahedral",
            kind="sindbis",
            symmetry="I",
            snr=math.inf,
            center_sigma_px=0.5,
            perturbation=PerturbationSpec(mode="gaussian", angle_deg=2.0, seed=101),
            engine={"symmetry": {"mode": "detect"}},
            # Bars re-measured under AU restriction: the rendered phantom
            # is only approximately G-symmetric on the discrete grid, so
            # matching in the asymmetric unit instead of near the
            # generating orientation costs ~0.2–1° at this tiny box size
            # (measured 3.36 / 4.50 at size 24; 3.2 / 5.0 unrestricted).
            thresholds=ScenarioThresholds(
                max_median_angular_error_deg=3.8,
                max_p90_angular_error_deg=5.0,
            ),
        ),
        # Ab-initio-like start: every angle uniformly wrong by up to 10°,
        # far outside the first window — the sliding search has to walk
        # there (§5), on a coarser schedule with a deeper slide budget.
        Scenario(
            name="ab_initio",
            kind="asymmetric",
            snr=math.inf,
            max_slides=12,
            schedule_levels=((2.0, 2.0, 3, 1), (1.0, 1.0, 2, 1), (0.5, 0.5, 2, 1)),
            perturbation=PerturbationSpec(mode="uniform", angle_deg=10.0, seed=202),
            thresholds=ScenarioThresholds(
                max_median_angular_error_deg=2.5,
                max_p90_angular_error_deg=3.1,
                min_improvement_ratio=2.0,
            ),
        ),
        # The outer loop end to end (DESIGN.md §14): seed the map from the
        # *perturbed* orientations, then alternate refine ↔ reconstruct
        # for two iterations with streaming accumulation.  The record's
        # FSC trajectory is the headline: it must land at a resolution and
        # angular accuracy only reachable if the loop actually converges.
        # Bars measured on the current implementation (3.57° / 5.17 Å,
        # ratio 1.05) plus headroom; the gauge of the self-seeded map
        # bounds how far truth-frame angular error can drop, so the pins
        # guard "the loop must not degrade the starts and must land a
        # sound map", not a convergence miracle.
        Scenario(
            name="loop_clean",
            kind="asymmetric",
            n_views=16,
            snr=math.inf,
            r_max=6.0,
            perturbation=PerturbationSpec(mode="gaussian", angle_deg=2.0, seed=303),
            schedule_levels=((1.0, 1.0, 3, 1), (0.5, 0.5, 2, 1)),
            loop_iterations=2,
            thresholds=ScenarioThresholds(
                max_median_angular_error_deg=4.5,
                max_fsc_crossing_angstrom=6.5,
                min_improvement_ratio=0.9,
            ),
        ),
        # Paper-scale cost models: Table 1 (Sindbis, l=331) and Table 2
        # (reovirus, l=511), calibrated on the Sindbis level-0 cell.  The
        # hour envelopes bracket the paper's totals (~11.5 h / ~70 h).
        CostModelScenario(
            name="paper_scale_sindbis",
            workload="sindbis",
            thresholds=ScenarioThresholds(
                min_total_hours=8.0,
                max_total_hours=16.0,
                max_calibration_rel_error=1e-6,
            ),
        ),
        CostModelScenario(
            name="paper_scale_reo",
            workload="reo",
            thresholds=ScenarioThresholds(
                min_total_hours=50.0,
                max_total_hours=100.0,
                max_calibration_rel_error=1e-6,
            ),
        ),
    )


# -- BENCH_scenarios.json ----------------------------------------------------

_RECORD_FIELDS: tuple[tuple[str, type], ...] = (
    ("name", str),
    ("type", str),
    ("spec", dict),
    ("metrics", dict),
    ("thresholds", dict),
    ("failures", list),
    ("passed", bool),
    ("fingerprint", str),
    ("perf", dict),
    ("timing", dict),
)

_REFINEMENT_METRIC_KEYS = (
    "n_views",
    "median_angular_error_deg",
    "p90_angular_error_deg",
    "initial_median_angular_error_deg",
    "improvement_ratio",
    "median_center_error_px",
    "fsc_crossing_angstrom",
    "initial_fsc_crossing_angstrom",
    "detected_symmetry_group",
    "candidate_reduction_factor",
)

_DETERMINATION_METRIC_KEYS = (
    "n_views",
    "iterations_run",
    "stop_reason",
    "fsc_trajectory_angstrom",
    "fsc_crossing_angstrom",
    "initial_fsc_crossing_angstrom",
    "mean_distance_trajectory",
    "median_angular_error_deg",
    "p90_angular_error_deg",
    "initial_median_angular_error_deg",
    "improvement_ratio",
)

_COST_MODEL_METRIC_KEYS = (
    "levels",
    "refinement_seconds_total",
    "total_seconds",
    "total_hours",
    "calibration_rel_error",
    "refinement_monotone_in_matchings",
    "flops_per_match_sample",
)


def validate_bench_payload(payload: Any) -> list[str]:
    """Schema-check a ``BENCH_scenarios.json`` payload; [] means valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    version = payload.get("schema_version")
    if version != SCENARIO_SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCENARIO_SCHEMA_VERSION}, got {version!r}"
        )
    records = payload.get("scenarios")
    if not isinstance(records, list) or not records:
        problems.append("scenarios must be a non-empty list")
        return problems
    names: list[str] = []
    for i, record in enumerate(records):
        where = f"scenarios[{i}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: must be an object")
            continue
        for fname, ftype in _RECORD_FIELDS:
            if fname not in record:
                problems.append(f"{where}: missing field {fname!r}")
            elif not isinstance(record[fname], ftype):
                problems.append(
                    f"{where}.{fname}: expected {ftype.__name__}, "
                    f"got {type(record[fname]).__name__}"
                )
        unknown = sorted(set(record) - {f for f, _ in _RECORD_FIELDS})
        if unknown:
            problems.append(f"{where}: unknown field(s) {', '.join(unknown)}")
        rtype = record.get("type")
        if rtype not in ("refinement", "determination", "cost_model"):
            problems.append(
                f"{where}.type: must be 'refinement', 'determination' or 'cost_model'"
            )
        elif isinstance(record.get("metrics"), dict):
            required = {
                "refinement": _REFINEMENT_METRIC_KEYS,
                "determination": _DETERMINATION_METRIC_KEYS,
                "cost_model": _COST_MODEL_METRIC_KEYS,
            }[rtype]
            for key in required:
                if key not in record["metrics"]:
                    problems.append(f"{where}.metrics: missing {key!r}")
        if isinstance(record.get("failures"), list) and isinstance(
            record.get("passed"), bool
        ):
            if record["passed"] != (not record["failures"]):
                problems.append(f"{where}: passed flag contradicts failures list")
        if isinstance(record.get("name"), str):
            names.append(record["name"])
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        problems.append(f"duplicate scenario names: {', '.join(dupes)}")
    counts = payload.get("counts")
    if not isinstance(counts, dict):
        problems.append("counts must be an object")
    return problems


def bench_payload(records: Sequence[ScenarioRecord]) -> dict[str, Any]:
    """Assemble (and self-validate) the ``BENCH_scenarios.json`` payload."""
    payload = {
        "schema_version": SCENARIO_SCHEMA_VERSION,
        "counts": {
            "total": len(records),
            "passed": sum(1 for r in records if r.passed),
            "failed": sum(1 for r in records if not r.passed),
        },
        "scenarios": [r.to_dict() for r in records],
    }
    problems = validate_bench_payload(payload)
    if problems:
        raise ValueError("invalid scenario payload: " + "; ".join(problems))
    return payload


def write_bench(records: Sequence[ScenarioRecord], path: str | Path) -> dict[str, Any]:
    """Atomically write the scenario trajectory; returns the payload."""
    payload = bench_payload(records)
    target = Path(path)
    fd, tmp = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return payload


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load and schema-check a ``BENCH_scenarios.json`` file."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_bench_payload(payload)
    if problems:
        raise ValueError(f"{path}: invalid scenario payload: " + "; ".join(problems))
    return payload
