"""Centered discrete Fourier transforms and frequency grids.

The centered convention puts the DC sample of an ``l``-point transform at
index ``c = l // 2``; frequency index ``k`` at array index ``i`` is
``k = i - c`` with ``k ∈ [-c, l - 1 - c]``.  Round-trips are exact:
``centered_ifftn(centered_fftn(x)) == x`` to floating-point precision.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "centered_fftn",
    "centered_ifftn",
    "centered_fft2",
    "centered_ifft2",
    "centered_fft1",
    "centered_ifft1",
    "fourier_center",
    "frequency_grid_2d",
    "frequency_grid_3d",
]


def fourier_center(size: int) -> int:
    """Index of the zero-frequency sample along an axis of length ``size``."""
    if size <= 0:
        raise ValueError("size must be positive")
    return size // 2


def centered_fftn(volume: np.ndarray) -> np.ndarray:
    """3D (or nD) centered forward DFT."""
    return np.fft.fftshift(np.fft.fftn(np.fft.ifftshift(np.asarray(volume))))


def centered_ifftn(spectrum: np.ndarray) -> np.ndarray:
    """Inverse of :func:`centered_fftn` (complex output; take ``.real`` for maps)."""
    return np.fft.fftshift(np.fft.ifftn(np.fft.ifftshift(np.asarray(spectrum))))


def centered_fft2(image: np.ndarray) -> np.ndarray:
    """2D centered forward DFT over the last two axes."""
    arr = np.asarray(image)
    return np.fft.fftshift(
        np.fft.fft2(np.fft.ifftshift(arr, axes=(-2, -1)), axes=(-2, -1)), axes=(-2, -1)
    )


def centered_ifft2(spectrum: np.ndarray) -> np.ndarray:
    """Inverse of :func:`centered_fft2` over the last two axes."""
    arr = np.asarray(spectrum)
    return np.fft.fftshift(
        np.fft.ifft2(np.fft.ifftshift(arr, axes=(-2, -1)), axes=(-2, -1)), axes=(-2, -1)
    )


def centered_fft1(signal: np.ndarray, axis: int = -1) -> np.ndarray:
    """1D centered forward DFT along ``axis``."""
    arr = np.asarray(signal)
    return np.fft.fftshift(np.fft.fft(np.fft.ifftshift(arr, axes=axis), axis=axis), axes=axis)


def centered_ifft1(spectrum: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`centered_fft1`."""
    arr = np.asarray(spectrum)
    return np.fft.fftshift(np.fft.ifft(np.fft.ifftshift(arr, axes=axis), axis=axis), axes=axis)


# (ky, kx) meshgrids are rebuilt on every slice/shift/ramp call in the
# matching loop; they only depend on ``size``, so cache them read-only.
_FREQ_2D_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def frequency_grid_2d(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Centered integer frequency coordinates ``(ky, kx)`` for an ``l×l`` image.

    Each returned array has shape ``(size, size)``; entry ``[i, j]`` holds the
    frequency index of pixel ``(i, j)``.  Arrays are cached per ``size`` and
    read-only; copy before mutating.
    """
    cached = _FREQ_2D_CACHE.get(size)
    if cached is None:
        c = fourier_center(size)
        k = np.arange(size) - c
        ky, kx = np.meshgrid(k, k, indexing="ij")
        ky.setflags(write=False)
        kx.setflags(write=False)
        cached = (ky, kx)
        _FREQ_2D_CACHE[size] = cached
    return cached


def frequency_grid_3d(size: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Centered integer frequency coordinates ``(kz, ky, kx)`` for a cube."""
    c = fourier_center(size)
    k = np.arange(size) - c
    kz, ky, kx = np.meshgrid(k, k, k, indexing="ij")
    return kz, ky, kx
