"""The ``config-gate``: every shipped config must load, forever.

Example configs rot silently — a renamed field, a tightened validator —
until a user hits the stale file.  This gate (run from ``tools/check.py``
and importable for tests) validates every ``.toml``/``.json`` config
under ``examples/`` end-to-end through
:func:`~repro.engine.config.load_config` and fingerprints each one, then
runs repro-lint rule RL011 (``config-reads-centralized``) alone over
``src/repro`` so any new ``os.environ`` read outside ``repro/engine/``
fails CI the day it lands, not the day it misbehaves.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.engine.config import ConfigError, load_config

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids cycles
    from repro.analysis.gate import GateResult

__all__ = ["run_config_gate", "validate_example_configs"]


def validate_example_configs(examples_dir: Path) -> tuple[list[str], list[str]]:
    """Load every config under ``examples_dir``.

    Returns ``(ok_lines, error_lines)``: one ``name → fingerprint`` line
    per valid config, one ``name: error`` line per broken one.
    """
    ok: list[str] = []
    errors: list[str] = []
    paths = sorted(
        p for suffix in ("*.toml", "*.json") for p in examples_dir.glob(suffix)
    )
    for path in paths:
        try:
            config = load_config(path)
        except ConfigError as exc:
            errors.append(f"{path.name}: {exc}")
        else:
            ok.append(f"{path.name} → {config.fingerprint()}")
    return ok, errors


def run_config_gate(root: Path | None = None) -> "GateResult":
    """Validate examples/ configs and enforce RL011 over ``src/repro``."""
    from repro.analysis.gate import GateResult, repo_root
    from repro.analysis.lint import lint_paths
    from repro.analysis.rules import all_rules

    root = root or repo_root()
    lines: list[str] = []
    failed = False

    examples = root / "examples"
    if examples.is_dir():
        ok, errors = validate_example_configs(examples)
        lines.extend(ok)
        if errors:
            failed = True
            lines.extend(errors)
        if not ok and not errors:
            failed = True
            lines.append("examples/ holds no .toml/.json engine configs")
    else:  # pragma: no cover - repo always ships examples/
        failed = True
        lines.append(f"missing examples directory: {examples}")

    rl011 = [rule for rule in all_rules() if rule.rule_id == "RL011"]
    findings = lint_paths([root / "src" / "repro"], rules=rl011)
    if findings:
        failed = True
        lines.extend(str(f) for f in findings)
    else:
        lines.append("RL011 config-reads-centralized: clean")

    return GateResult(
        "config-gate", "failed" if failed else "ok", "\n".join(lines)
    )
