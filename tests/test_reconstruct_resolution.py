"""Tests for the odd/even resolution procedure (Figure 4)."""

import numpy as np
import pytest

from repro.geometry import Orientation
from repro.imaging import simulate_views
from repro.reconstruct import correlation_curve, half_map_fsc, split_odd_even
from repro.reconstruct.resolution import resolution_at_threshold
from repro.utils import default_rng


def test_split_odd_even():
    odd, even = split_odd_even(7)
    assert list(odd) == [0, 2, 4, 6]
    assert list(even) == [1, 3, 5]
    with pytest.raises(ValueError):
        split_odd_even(1)


def test_half_map_fsc_high_at_low_resolution(phantom24):
    views = simulate_views(phantom24, 60, snr=4.0, seed=0)
    fsc, m_odd, m_even = half_map_fsc(views.images, views.true_orientations)
    assert fsc[1] > 0.8
    assert m_odd.size == 24 and m_even.size == 24


def test_correlation_curve_structure(phantom24):
    views = simulate_views(phantom24, 40, snr=3.0, seed=1)
    curve = correlation_curve(views.images, views.true_orientations, apix=2.0, label="x")
    assert curve.label == "x"
    assert len(curve.shells) == len(curve.cc) == len(curve.resolution_angstrom)
    assert curve.shells[0] == 1
    # resolution decreases (improves) with shell radius
    assert np.all(np.diff(curve.resolution_angstrom) < 0)
    assert curve.resolution_angstrom[0] == pytest.approx(48.0)  # l*apix/1


def test_noisier_data_gives_worse_crossing(phantom24):
    clean = simulate_views(phantom24, 60, snr=20.0, seed=2)
    noisy = simulate_views(phantom24, 60, snr=0.3, seed=2)
    c_clean = correlation_curve(clean.images, clean.true_orientations)
    c_noisy = correlation_curve(noisy.images, noisy.true_orientations)
    assert c_clean.crossing(0.5) <= c_noisy.crossing(0.5)


def test_resolution_at_threshold_interpolates():
    cc = np.array([0.9, 0.7, 0.3, 0.1])
    res = np.array([20.0, 10.0, 5.0, 2.5])
    r = resolution_at_threshold(cc, res, threshold=0.5)
    assert 5.0 < r < 10.0
    # exactly at midpoint of the 0.7 -> 0.3 drop in frequency space
    assert r == pytest.approx(1.0 / (0.1 + 0.5 * 0.1), rel=1e-6)


def test_resolution_at_threshold_edges():
    res = np.array([20.0, 10.0])
    assert resolution_at_threshold(np.array([0.4, 0.3]), res) == 20.0  # starts below
    assert resolution_at_threshold(np.array([0.9, 0.8]), res) == 10.0  # never drops


def test_resolution_at_threshold_validation():
    with pytest.raises(ValueError):
        resolution_at_threshold(np.array([1.0]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        resolution_at_threshold(np.array([]), np.array([]))


def test_perturbed_orientations_lower_curve(phantom24):
    # the core Figure 5/6 mechanism, in miniature with true orientations
    views = simulate_views(phantom24, 80, snr=4.0, seed=3)
    rng = default_rng(0)
    bad = [
        Orientation(
            o.theta + rng.normal(0, 6.0), o.phi + rng.normal(0, 6.0), o.omega + rng.normal(0, 6.0)
        )
        for o in views.true_orientations
    ]
    c_true = correlation_curve(views.images, views.true_orientations)
    c_bad = correlation_curve(views.images, bad)
    mid = slice(2, 8)
    assert c_true.cc[mid].mean() > c_bad.cc[mid].mean()


def test_fsc_crossing_matches_curve(phantom24):
    from repro.imaging.simulate import simulate_views
    from repro.reconstruct.resolution import correlation_curve, fsc_crossing

    views = simulate_views(phantom24, 8, snr=3.0, seed=4)
    curve = correlation_curve(views.images, views.true_orientations, apix=views.apix)
    crossing = fsc_crossing(views.images, views.true_orientations, apix=views.apix)
    assert crossing == curve.crossing(0.5)
