"""Tests for direct-Fourier reconstruction (step C)."""

import numpy as np
import pytest

from repro.ctf import CTFParams
from repro.geometry import Orientation, random_orientations
from repro.imaging import simulate_views
from repro.reconstruct import reconstruct_from_views


def test_reconstruction_correlates_with_truth(phantom24):
    views = simulate_views(phantom24, 60, seed=0)
    rec = reconstruct_from_views(views.images, views.true_orientations)
    assert rec.normalized().correlation(phantom24) > 0.7


def test_reconstruction_scale_matches_truth(phantom24):
    # the §3 distance is scale-sensitive: cuts of the reconstruction must
    # have the same magnitude as the views they came from
    from repro.align import DistanceComputer
    from repro.fourier import centered_fft2
    from repro.fourier.slicing import extract_slice

    views = simulate_views(phantom24, 80, seed=1)
    rec = reconstruct_from_views(views.images, views.true_orientations)
    dc = DistanceComputer(24, r_max=6)
    f = dc.gather(centered_fft2(views.images[0]))
    c = dc.gather(
        extract_slice(rec.fourier_oversampled(2), views.true_orientations[0].matrix(), out_size=24)
    )
    ratio = np.linalg.norm(c) / np.linalg.norm(f)
    assert 0.7 < ratio < 1.3


def test_more_views_improve_reconstruction(phantom24):
    views = simulate_views(phantom24, 80, seed=2)
    few = reconstruct_from_views(views.images[:12], views.true_orientations[:12])
    many = reconstruct_from_views(views.images, views.true_orientations)
    assert many.normalized().correlation(phantom24) > few.normalized().correlation(phantom24)


def test_wrong_orientations_degrade_reconstruction(phantom24):
    views = simulate_views(phantom24, 60, seed=3)
    good = reconstruct_from_views(views.images, views.true_orientations)
    scrambled = random_orientations(60, seed=99)
    bad = reconstruct_from_views(views.images, scrambled)
    assert good.normalized().correlation(phantom24) > bad.normalized().correlation(phantom24) + 0.2


def test_center_offsets_honoured(phantom24):
    views = simulate_views(phantom24, 50, center_sigma_px=1.5, seed=4)
    with_centers = reconstruct_from_views(views.images, views.true_orientations)
    ignored = reconstruct_from_views(
        views.images, [o.with_center(0.0, 0.0) for o in views.true_orientations]
    )
    assert (
        with_centers.normalized().correlation(phantom24)
        > ignored.normalized().correlation(phantom24)
    )


def test_ctf_weighted_reconstruction(phantom24):
    ctf = CTFParams(defocus_angstrom=8000.0)
    views = simulate_views(phantom24, 60, ctf=ctf, seed=5)
    rec_corrected = reconstruct_from_views(
        views.images, views.true_orientations, apix=phantom24.apix, ctf_params=views.ctf_params
    )
    rec_ignored = reconstruct_from_views(
        views.images, views.true_orientations, apix=phantom24.apix, ctf_mode="none",
        ctf_params=None,
    )
    cc_corr = rec_corrected.normalized().correlation(phantom24)
    cc_ign = abs(rec_ignored.normalized().correlation(phantom24))
    assert cc_corr > cc_ign - 0.05  # phase flipping should not hurt, usually helps


def test_pad_factor_one_works(phantom24):
    views = simulate_views(phantom24, 40, seed=6)
    rec = reconstruct_from_views(views.images, views.true_orientations, pad_factor=1)
    assert rec.size == 24
    assert rec.normalized().correlation(phantom24) > 0.5


def test_validation(phantom24):
    views = simulate_views(phantom24, 4, seed=7)
    with pytest.raises(ValueError):
        reconstruct_from_views(views.images, views.true_orientations[:2])
    with pytest.raises(ValueError):
        reconstruct_from_views(views.images[0], views.true_orientations)
    with pytest.raises(ValueError):
        reconstruct_from_views(views.images, views.true_orientations, ctf_mode="magic")
    with pytest.raises(ValueError):
        reconstruct_from_views(views.images, views.true_orientations, pad_factor=0)
    with pytest.raises(ValueError):
        reconstruct_from_views(
            views.images, views.true_orientations, ctf_params=[CTFParams()]
        )


def test_apix_propagates(phantom24):
    views = simulate_views(phantom24, 8, seed=8)
    rec = reconstruct_from_views(views.images, views.true_orientations, apix=3.1)
    assert rec.apix == 3.1
