"""Property tests over the scenario harness's determinism contract.

The load-bearing invariant: the dataset stream (phantom, projections,
noise, boxing errors) is driven by ``Scenario.seed`` while the initial-
orientation perturbation is driven by ``PerturbationSpec.seed`` — two
independent RNGs.  If a refactor ever couples them (e.g. one shared
generator feeding both, as :func:`simulate_views` does internally for its
own convenience path), changing the perturbation seed would silently
regenerate different *images*, and accuracy comparisons across starts
would be comparing different datasets.  Hypothesis varies the
perturbation seed and asserts the images stay byte-identical and the
noiseless refinement stays accurate from every start.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pipeline.scenarios import (
    PerturbationSpec,
    Scenario,
    ScenarioRunner,
    ScenarioThresholds,
    perturb_orientations,
)

pytestmark = pytest.mark.scenarios

#: Small enough for ~60 ms per refinement; thresholds hold for *every*
#: perturbation seed (measured max over a 25-seed sweep: median 1.01°,
#: p90 1.88°, vs initial medians up to 4.2°).
TINY = Scenario(
    name="tiny-noiseless",
    kind="asymmetric",
    size=16,
    n_views=4,
    snr=math.inf,
    r_max=6.0,
    max_slides=3,
    schedule_levels=((1.0, 1.0, 2, 1), (0.5, 0.5, 2, 1)),
    perturbation=PerturbationSpec(mode="gaussian", angle_deg=1.5, seed=0),
    thresholds=ScenarioThresholds(
        max_median_angular_error_deg=1.6,
        max_p90_angular_error_deg=2.6,
    ),
)

_RUNNER = ScenarioRunner()
_REFERENCE_IMAGES = _RUNNER.dataset(TINY).images


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_accuracy_invariant_under_perturbation_seed(seed):
    scenario = replace(TINY, perturbation=replace(TINY.perturbation, seed=seed))
    views = _RUNNER.dataset(scenario)
    # the dataset must not depend on the perturbation seed, byte for byte
    assert np.array_equal(views.images, _REFERENCE_IMAGES)
    record = _RUNNER.run_scenario(scenario)
    assert record.passed, (seed, record.metrics, record.failures)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["gaussian", "uniform"]),
    angle=st.floats(min_value=0.1, max_value=15.0),
)
def test_perturbation_bounded_and_reproducible(seed, mode, angle):
    truth = _RUNNER.dataset(TINY).true_orientations
    spec = PerturbationSpec(mode=mode, angle_deg=angle, seed=seed)
    a = perturb_orientations(truth, spec)
    b = perturb_orientations(truth, spec)
    assert all(x == y for x, y in zip(a, b))
    assert all(o.cx == 0.0 and o.cy == 0.0 for o in a)
    if mode == "uniform":
        for o, t in zip(a, truth):
            assert abs(o.theta - t.theta) <= angle
            assert abs(o.phi - t.phi) <= angle
            assert abs(o.omega - t.omega) <= angle


def test_same_scenario_yields_identical_records():
    a = _RUNNER.run_scenario(TINY)
    b = _RUNNER.run_scenario(TINY)
    assert a.comparable() == b.comparable()
    assert a.metrics == b.metrics  # exact float equality: fully seeded
