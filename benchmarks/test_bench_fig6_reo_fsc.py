"""E6 — Figure 6: reovirus correlation-vs-resolution, old vs new orientations.

Same protocol as Figure 5 on the reovirus-like (double-shell) phantom;
paper values: new crosses 0.5 at 8.0 Å vs 8.6 Å for the old orientations.
"""

import pytest

from repro.pipeline import format_curve


def test_fig6_reo_fsc(benchmark, figure_experiment_cache, save_artifact):
    res = benchmark.pedantic(lambda: figure_experiment_cache("reo"), rounds=1, iterations=1)

    assert res.new_crossing_angstrom <= res.old_crossing_angstrom
    mid = slice(2, 9)
    assert res.new_curve.cc[mid].mean() > res.old_curve.cc[mid].mean()
    assert res.new_map_cc_truth >= res.old_map_cc_truth - 0.01

    text = format_curve(
        res.old_curve.resolution_angstrom,
        {"cc_old": res.old_curve.cc, "cc_new": res.new_curve.cc},
        title="Figure 6 (reo-like): odd/even correlation vs resolution",
    )
    text += (
        f"\n\n0.5 crossings:  old {res.old_crossing_angstrom:.2f} A"
        f"  new {res.new_crossing_angstrom:.2f} A"
        f"\npaper:          old 8.6 A  new 8.0 A (real reo data)"
        f"\nangular error:  old {res.old_angular_error_deg:.2f} deg"
        f"  new {res.new_angular_error_deg:.2f} deg"
    )
    save_artifact("fig6_reo_fsc.txt", text)
