"""RL006/RL007 — the two-kernels-one-truth invariants.

RL006: any function that accepts a ``kernel=`` parameter is a fork point
between the kernel implementations.  Fork points may select and delegate,
but they may not *compute*: every distance must bottom out in the single
:meth:`DistanceComputer.distance_band` reduction (directly or through the
matching API), the only kernel names are ``"fused"``, ``"batched"`` and
``"reference"``, and the choice must be validated or forwarded so a typo'd
kernel name fails loudly instead of silently picking a default.

RL007: the kernel boundaries named in ``REQUIRED_CONTRACTS`` must carry an
``@array_contract`` declaration, so the runtime-contract layer cannot be
dropped from a hot function during a refactor without the gate noticing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule, attribute_chain, walk_functions

__all__ = ["KernelBoundaryContract", "TwoKernelsOneTruth", "REQUIRED_CONTRACTS"]

_KERNEL_NAMES = {"fused", "batched", "reference"}

#: Calls that are known to bottom out in DistanceComputer.distance_band.
_APPROVED_CALLS = {
    "distance_band",
    "distance",
    "distance_batch",
    "distance_many_to_one",
    "match_view",
    "match_view_band",
    "match_view_window",
    "match_window",
    "refine_center",
    "refine_view_at_level",
    "sliding_window_search",
    "refine_level_serial",
    "run_level",
    "cut_band",
    "cut_bands",
    "distances",
    "_box_search",
}

#: Kernel-boundary functions that must declare runtime array contracts.
REQUIRED_CONTRACTS: dict[str, frozenset[str]] = {
    "repro/align/distance.py": frozenset(
        {"DistanceComputer.gather", "DistanceComputer.distance_band"}
    ),
    "repro/align/fused.py": frozenset(
        {
            "MatchPlan.cut_bands",
            "MatchPlan.distances",
            "MatchPlan.cut_bands_batched",
            "MatchPlan.match_window",
            "MatchPlan.match_window_pruned",
        }
    ),
    "repro/fourier/slicing.py": frozenset({"extract_slice", "extract_slices"}),
    "repro/parallel/viewsched.py": frozenset({"_attach_volume"}),
}


def _has_kernel_param(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True for a *selector* ``kernel`` param (str-typed or str-defaulted).

    A ``kernel`` annotated with another type (e.g. the Kaiser-Bessel
    gridding window) is a different concept and is not a fork point.
    """
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults: list[ast.expr | None] = [None] * (len(positional) - len(args.defaults))
    defaults += list(args.defaults)
    candidates = list(zip(positional, defaults)) + list(zip(args.kwonlyargs, args.kw_defaults))
    for arg, default in candidates:
        if arg.arg != "kernel":
            continue
        if isinstance(arg.annotation, ast.Name) and arg.annotation.id == "str":
            return True
        if isinstance(default, ast.Constant) and isinstance(default.value, str):
            return True
        if arg.annotation is None and default is None:
            return True
    return False


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


class TwoKernelsOneTruth(Rule):
    rule_id = "RL006"
    name = "two-kernels-one-truth"
    rationale = (
        "Functions taking kernel= are fork points between the kernels: they "
        "must compare only against 'fused'/'batched'/'reference', validate or "
        "forward the choice, delegate all distance math to the distance_band "
        "family, and never open-code sqrt/norm reductions that could diverge "
        "between the kernels."
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        for qualname, fn in walk_functions(mod.tree):
            if not _has_kernel_param(fn):
                continue
            yield from self._check_function(mod, qualname, fn)

    def _check_function(
        self, mod: ModuleUnderLint, qualname: str, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        validates = False
        forwards = False
        approved_call = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Raise):
                validates = True
            elif isinstance(node, ast.Call):
                if any(kw.arg == "kernel" for kw in node.keywords):
                    forwards = True
                if _call_name(node) in _APPROVED_CALLS:
                    approved_call = True
                chain = attribute_chain(node.func)
                if chain and (
                    (chain[0] in ("np", "numpy") and chain[-1] in ("sqrt", "norm"))
                ):
                    yield self.finding(mod,
                        node,
                        f"{qualname}: open-coded `{'.'.join(chain)}` reduction in a "
                        "kernel fork point; distances must come from the "
                        "distance_band family so both kernels share one truth",
                    )
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and key.value == "kernel":
                        forwards = True
            elif isinstance(node, ast.Assign):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "kernel"
                    and any(isinstance(t, ast.Attribute) for t in node.targets)
                ):
                    forwards = True
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(mod, qualname, node)
        if not (validates or forwards):
            yield self.finding(mod,
                fn,
                f"{qualname}: accepts kernel= but neither validates it (raise on "
                "unknown names) nor forwards it to a function that does",
            )
        if not (approved_call or forwards):
            yield self.finding(mod,
                fn,
                f"{qualname}: accepts kernel= but never routes through the "
                "distance_band / matching API (both kernel branches must share "
                "one distance reduction)",
            )

    def _check_compare(
        self, mod: ModuleUnderLint, qualname: str, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        if not any(isinstance(op, ast.Name) and op.id == "kernel" for op in operands):
            return
        literals: list[str] = []
        for op in operands:
            if isinstance(op, ast.Constant) and isinstance(op.value, str):
                literals.append(op.value)
            elif isinstance(op, (ast.Tuple, ast.List, ast.Set)):
                literals.extend(
                    el.value
                    for el in op.elts
                    if isinstance(el, ast.Constant) and isinstance(el.value, str)
                )
        for lit in literals:
            if lit not in _KERNEL_NAMES:
                yield self.finding(mod,
                    node,
                    f"{qualname}: kernel compared against unknown name {lit!r} "
                    "(only 'fused', 'batched' and 'reference' exist)",
                )


class KernelBoundaryContract(Rule):
    rule_id = "RL007"
    name = "kernel-boundary-contract"
    rationale = (
        "The kernel boundaries (band gathers, fused cut sampling, slice "
        "extraction, shared-memory attach) must declare @array_contract "
        "specs so CI's contracts-on test run checks every shape/dtype "
        "convention the fused/reference equivalence depends on."
    )
    include = tuple(REQUIRED_CONTRACTS)

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        required = REQUIRED_CONTRACTS.get(mod.rel)
        if not required:
            return
        seen: set[str] = set()
        for qualname, fn in walk_functions(mod.tree):
            if qualname not in required:
                continue
            seen.add(qualname)
            if not any(self._is_contract_decorator(d) for d in fn.decorator_list):
                yield self.finding(mod,
                    fn,
                    f"kernel boundary {qualname} is missing its @array_contract "
                    "declaration",
                )
        for missing in sorted(required - seen):
            yield self.finding(mod,
                1,
                f"expected kernel boundary {missing} in this module (update "
                "REQUIRED_CONTRACTS if it moved)",
            )

    @staticmethod
    def _is_contract_decorator(node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            node = node.func
        if isinstance(node, ast.Name):
            return node.id == "array_contract"
        if isinstance(node, ast.Attribute):
            return node.attr == "array_contract"
        return False
