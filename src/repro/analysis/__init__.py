"""Static analysis for the reproduction: repro-lint, typing gate, contracts.

Three layers keep the fused/reference kernel pair and the deterministic
scheduler honest (see DESIGN.md, "Machine-checked invariants"):

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — AST rules
  encoding repo-specific invariants (``python -m repro.analysis``);
* the strict-typing configuration in ``pyproject.toml`` over the annotated
  core packages (``py.typed`` ships with the wheel);
* :mod:`repro.analysis.contracts` — runtime array contracts at the kernel
  boundaries, enabled by ``REPRO_CHECK_CONTRACTS=1`` and free otherwise.

Only the contracts API is re-exported here: kernel modules import it at
startup, so this ``__init__`` stays dependency-light (the lint machinery
loads lazily via ``repro.analysis.lint`` / ``python -m repro.analysis``).
"""

from repro.analysis.contracts import (
    ArraySpec,
    ContractViolation,
    array_contract,
    contracts_enabled,
    spec,
)

__all__ = [
    "ArraySpec",
    "ContractViolation",
    "array_contract",
    "contracts_enabled",
    "spec",
]
