"""Refinement statistics: operation counts and accuracy against ground truth.

The paper reports per-step wall times and the sliding-window activation
counts; because our datasets are synthetic we can *additionally* report the
angular and center errors of the refined orientations, optionally modulo a
symmetry group (a refined orientation of an icosahedral particle is correct
if it matches the truth up to any of the 60 group rotations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation, orientation_distance_deg
from repro.geometry.rotations import rotation_angle_deg
from repro.geometry.symmetry import SymmetryGroup

__all__ = ["RefinementStats", "angular_errors", "center_errors"]


@dataclass
class RefinementStats:
    """Aggregated counters over one refinement run.

    One entry per level in each of the per-level lists; scalar totals over
    all views and levels.
    """

    n_views: int = 0
    level_steps_deg: list[float] = field(default_factory=list)
    matches_per_level: list[int] = field(default_factory=list)
    center_evals_per_level: list[int] = field(default_factory=list)
    window_slides_per_level: list[int] = field(default_factory=list)
    center_slides_per_level: list[int] = field(default_factory=list)

    @property
    def total_matches(self) -> int:
        return int(sum(self.matches_per_level))

    @property
    def total_center_evals(self) -> int:
        return int(sum(self.center_evals_per_level))

    def record_level(
        self,
        step_deg: float,
        n_matches: int,
        n_center_evals: int,
        n_window_slides: int,
        n_center_slides: int,
    ) -> None:
        self.level_steps_deg.append(step_deg)
        self.matches_per_level.append(int(n_matches))
        self.center_evals_per_level.append(int(n_center_evals))
        self.window_slides_per_level.append(int(n_window_slides))
        self.center_slides_per_level.append(int(n_center_slides))


def angular_errors(
    refined: list[Orientation],
    truth: list[Orientation],
    symmetry: SymmetryGroup | None = None,
) -> Array:
    """Per-view SO(3) geodesic error in degrees, optionally modulo a group.

    With a symmetry group the error is ``min_g angle(g·R_true, R_refined)``
    — the orientation is only defined up to the group for a symmetric
    particle.
    """
    if len(refined) != len(truth):
        raise ValueError("lists must have equal length")
    out = np.empty(len(refined))
    for i, (r, t) in enumerate(zip(refined, truth)):
        if symmetry is None:
            out[i] = orientation_distance_deg(r, t)
        else:
            rm = r.matrix()
            tm = t.matrix()
            out[i] = min(rotation_angle_deg((g @ tm).T @ rm) for g in symmetry.matrices)
    return out


def center_errors(refined: list[Orientation], truth: list[Orientation]) -> Array:
    """Per-view Euclidean center error in pixels."""
    if len(refined) != len(truth):
        raise ValueError("lists must have equal length")
    return np.array(
        [np.hypot(r.cx - t.cx, r.cy - t.cy) for r, t in zip(refined, truth)]
    )
