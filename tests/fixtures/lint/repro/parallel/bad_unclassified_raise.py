"""Known-bad fixture: worker-reachable raise outside the retry taxonomy (RL014).

``GlitchError`` subclasses plain ``Exception``, which RetryPolicy's
``EXCEPTION_CLASSES`` table does not classify — so a worker raising it
would fall through the restart logic as an anonymous crash.
"""

from __future__ import annotations

__all__ = ["GlitchError", "guarded_chunk", "run_guarded"]


class GlitchError(Exception):
    """Neither retryable, fatal, nor degradation: unclassifiable."""


def guarded_chunk(payload):
    if payload.get("poisoned"):
        raise GlitchError("worker returned garbage")
    return payload["value"]


def run_guarded(executor, payload):
    return executor.submit(guarded_chunk, payload)
