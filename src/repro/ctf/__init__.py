"""Contrast Transfer Function model and correction (step e of the algorithm).

The microscope CTF multiplies the true 2D transform of the specimen by an
oscillatory, sign-flipping function of spatial frequency (§3).  The paper
corrects each view's DFT before matching; views from the same micrograph
share one CTF.
"""

from repro.ctf.model import CTFParams, ctf_1d, ctf_2d, defocus_group_params
from repro.ctf.correct import apply_ctf, phase_flip, wiener_correct
from repro.ctf.estimate import estimate_defocus, radial_power_spectrum

__all__ = [
    "CTFParams",
    "ctf_1d",
    "ctf_2d",
    "defocus_group_params",
    "apply_ctf",
    "phase_flip",
    "wiener_correct",
    "estimate_defocus",
    "radial_power_spectrum",
]
