"""Command-line interface: the production-style entry points.

The original programs were driven by control files over MRC maps, image
stacks and orientation files; this CLI reproduces that workflow:

    python -m repro.pipeline.cli simulate   --kind sindbis --size 32 ...
    python -m repro.pipeline.cli refine     --map map.mrc --stack views.mrc ...
    python -m repro.pipeline.cli determine  --map init.mrc --stack views.mrc ...
    python -m repro.pipeline.cli reconstruct --stack views.mrc --orient o.txt ...
    python -m repro.pipeline.cli detect-symmetry --map map.mrc
    python -m repro.pipeline.cli resolution --stack views.mrc --orient o.txt

Every subcommand reads/writes standard artifacts (MRC2014 + the plain-text
orientation format), so the steps compose through the filesystem exactly
like the paper's pipeline.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["build_parser", "main", "validate_refine_args"]

#: Effective defaults for the refine subcommand's tunables.  The parser
#: declares these options with ``default=argparse.SUPPRESS`` so an option
#: is *absent* from the namespace unless the user typed it — that presence
#: is the explicit-flag signal the config resolver layers above config
#: files (``--kernel batched`` must beat a file even though "batched" is
#: also the default).  :func:`_normalize_refine_args` then fills the gaps
#: from this table before validation, so downstream code always sees
#: concrete values.
_REFINE_DEFAULTS: dict[str, object] = {
    "levels": "1.0,0.5",
    "half_steps": 3,
    "max_slides": 2,
    "r_max": None,
    "kernel": "batched",
    "no_memo": False,
    "no_centers": False,
    "workers": 1,
    "ranks": 0,
    "checkpoint": None,
    "resume": False,
    "prune": False,
    "polish": False,
    "symmetry": "none",
}

#: Extra tunables of the determine subcommand (the outer loop's knobs),
#: layered on top of :data:`_REFINE_DEFAULTS` minus ``ranks`` (the outer
#: loop drives a real execution backend, not the simulated cluster).
_DETERMINE_DEFAULTS: dict[str, object] = {
    **{k: v for k, v in _REFINE_DEFAULTS.items() if k != "ranks"},
    "ranks": 0,  # never a determine flag; keeps shared validation happy
    "iterations": 3,
    "fsc_threshold": 0.5,
    "min_improvement": 0.0,
    "r_max_schedule": None,
    "no_streaming": False,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for all subcommands (exposed for doc/testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orientation refinement of virus structures with unknown symmetry (IPPS 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic dataset (map + view stack + orientations)")
    sim.add_argument("--kind", default="sindbis", help="phantom kind: sindbis|reo|asymmetric|cN")
    sim.add_argument("--size", type=int, default=32)
    sim.add_argument("--views", type=int, default=24)
    sim.add_argument("--snr", type=float, default=3.0)
    sim.add_argument("--apix", type=float, default=1.0)
    sim.add_argument("--center-sigma", type=float, default=0.5)
    sim.add_argument("--initial-error", type=float, default=3.0, help="deg of jitter on O_init")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--out-map", required=True)
    sim.add_argument("--out-stack", required=True)
    sim.add_argument("--out-orient", required=True)
    sim.add_argument("--out-truth-orient", default=None)

    absent = argparse.SUPPRESS  # presence on the namespace == explicit flag

    def add_engine_options(p: argparse.ArgumentParser, checkpoint_help: str) -> None:
        """The tunables shared by ``refine`` and ``determine``."""
        p.add_argument("--r-max", type=float, default=absent)
        p.add_argument("--levels", default=absent, help="comma-separated angular steps")
        p.add_argument("--half-steps", type=int, default=absent)
        p.add_argument("--max-slides", type=int, default=absent)
        p.add_argument("--no-centers", action="store_true", default=absent)
        p.add_argument(
            "--kernel", choices=("batched", "fused", "reference"), default=absent,
            help="matching kernel: batched whole-window with memo (default), fused "
            "in-band per candidate, or the reference slow path (all bit-identical)",
        )
        p.add_argument(
            "--no-memo", action="store_true", default=absent,
            help="disable the orientation memo cache (batched kernel only)",
        )
        p.add_argument(
            "--workers", type=int, default=absent,
            help="process count for the per-view fan-out (1 = serial)",
        )
        p.add_argument("--checkpoint", default=absent, help=checkpoint_help)
        p.add_argument(
            "--resume", action="store_true", default=absent,
            help="seed the run from --checkpoint if it matches this configuration",
        )
        p.add_argument(
            "--prune", action="store_true", default=absent,
            help="best-first early-termination pruning of candidate windows "
            "(batched kernel only; the winner stays bit-identical)",
        )
        p.add_argument(
            "--polish", action="store_true", default=absent,
            help="replace the finest grid levels with a continuous "
            "least-squares polish over (angles, center)",
        )
        p.add_argument(
            "--symmetry", default=absent,
            help="restrict the search to one asymmetric unit: 'none' (default), "
            "'detect' (find the map's point group first), or 'fixed:<group>' "
            "with a Schoenflies symbol (C<n>, D<n>, T, O, I)",
        )
        p.add_argument(
            "--config", dest="config_path", default=None,
            help="engine config file (.toml or .json); flags override its fields",
        )
        p.add_argument(
            "--dry-run", action="store_true",
            help="print the fully resolved engine config (with per-field "
            "provenance: default/file/env/flag) and exit without running",
        )

    ref = sub.add_parser("refine", help="refine orientations of a view stack against a map")
    ref.add_argument("--map", dest="map_path", required=True)
    ref.add_argument("--stack", required=True)
    ref.add_argument("--orient", required=True, help="initial orientation file")
    ref.add_argument("--out", required=True, help="refined orientation file")
    ref.add_argument(
        "--ranks", type=int, default=absent,
        help=">0: run on the simulated cluster",
    )
    add_engine_options(
        ref, "write a level-granular checkpoint here after every completed level"
    )

    det_loop = sub.add_parser(
        "determine",
        help="full structure determination: iterate refine + reconstruct "
        "until the FSC resolution stops improving",
    )
    det_loop.add_argument("--map", dest="map_path", required=True, help="initial map")
    det_loop.add_argument("--stack", required=True)
    det_loop.add_argument("--orient", required=True, help="initial orientation file")
    det_loop.add_argument("--out", required=True, help="final orientation file")
    det_loop.add_argument("--out-map", default=None, help="final reconstructed map (MRC)")
    det_loop.add_argument(
        "--iterations", type=int, default=absent,
        help="outer refine→reconstruct iteration budget",
    )
    det_loop.add_argument(
        "--fsc-threshold", type=float, default=absent,
        help="FSC crossing threshold used for the resolution estimate",
    )
    det_loop.add_argument(
        "--min-improvement", type=float, default=absent,
        help="stop when the resolution improves by less than this many angstrom",
    )
    det_loop.add_argument(
        "--r-max-schedule", default=absent,
        help="comma-separated per-iteration r_max ladder (last entry repeats)",
    )
    det_loop.add_argument(
        "--no-streaming", action="store_true", default=absent,
        help="barrier each iteration before reconstructing instead of streaming "
        "results into the map accumulator (bit-identical either way)",
    )
    add_engine_options(
        det_loop,
        "checkpoint *directory* for the outer loop (loop.json + per-iteration "
        "orientation files); a killed run resumes mid-loop with --resume",
    )

    rec = sub.add_parser("reconstruct", help="direct-Fourier reconstruction from a stack + orientations")
    rec.add_argument("--stack", required=True)
    rec.add_argument("--orient", required=True)
    rec.add_argument("--out", required=True)
    rec.add_argument("--pad", type=int, default=2)

    det = sub.add_parser("detect-symmetry", help="detect the point group of a map")
    det.add_argument("--map", dest="map_path", required=True)
    det.add_argument("--max-order", type=int, default=6)
    det.add_argument("--axes", type=int, default=150)
    det.add_argument("--seed", type=int, default=0)

    res = sub.add_parser("resolution", help="odd/even FSC resolution of a stack + orientations")
    res.add_argument("--stack", required=True)
    res.add_argument("--orient", required=True)
    res.add_argument("--threshold", type=float, default=0.5)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.density import write_mrc
    from repro.imaging import simulate_views
    from repro.pipeline.datasets import phantom_for
    from repro.refine import write_orientation_file

    density = phantom_for(args.kind, args.size, apix=args.apix, seed=args.seed)
    views = simulate_views(
        density, args.views, snr=args.snr, center_sigma_px=args.center_sigma,
        initial_angle_error_deg=args.initial_error, seed=args.seed,
    )
    write_mrc(args.out_map, density.data, apix=args.apix)
    write_mrc(args.out_stack, views.images, apix=args.apix)
    write_orientation_file(args.out_orient, views.initial_orientations)
    if args.out_truth_orient:
        write_orientation_file(args.out_truth_orient, views.true_orientations)
    print(f"wrote {args.out_map}, {args.out_stack} ({args.views} views), {args.out_orient}")
    return 0


def _parse_levels(levels: str) -> list[float]:
    """Parse ``--levels`` into angular steps, raising ``ValueError`` on junk."""
    try:
        steps = [float(s) for s in levels.split(",") if s.strip()]
    except ValueError:
        raise ValueError(f"--levels must be comma-separated numbers, got {levels!r}") from None
    if not steps:
        raise ValueError("--levels must name at least one angular step")
    if any(s <= 0 for s in steps):
        raise ValueError(f"--levels steps must be positive degrees, got {levels!r}")
    return steps


def validate_refine_args(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Reject malformed refine options with the standard argparse exit (2).

    Catching these up front means a typo'd ``--workers 0`` fails in
    milliseconds with a usage message instead of deep inside the scheduler
    after the map and stack have already been loaded.
    """
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.ranks < 0:
        parser.error(f"--ranks must be >= 0 (0 = in-process), got {args.ranks}")
    if args.half_steps < 1:
        parser.error(f"--half-steps must be >= 1, got {args.half_steps}")
    if args.max_slides < 0:
        parser.error(f"--max-slides must be >= 0, got {args.max_slides}")
    if args.r_max is not None and args.r_max <= 0:
        parser.error(f"--r-max must be positive, got {args.r_max}")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.checkpoint and args.ranks > 0:
        parser.error("--checkpoint is only supported for the in-process path (--ranks 0)")
    try:
        _parse_levels(args.levels)
    except ValueError as exc:
        parser.error(str(exc))


def _validate_determine_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Determine-subcommand validation: the shared checks plus loop knobs."""
    validate_refine_args(parser, args)
    if args.iterations < 1:
        parser.error(f"--iterations must be >= 1, got {args.iterations}")
    if not 0.0 < args.fsc_threshold < 1.0:
        parser.error(f"--fsc-threshold must be in (0, 1), got {args.fsc_threshold}")
    if args.min_improvement < 0.0:
        parser.error(f"--min-improvement must be >= 0, got {args.min_improvement}")
    if args.r_max_schedule is not None:
        try:
            ladder = _parse_levels(args.r_max_schedule)
        except ValueError:
            parser.error(
                f"--r-max-schedule must be comma-separated positive numbers, "
                f"got {args.r_max_schedule!r}"
            )
        else:
            args.r_max_schedule = ladder


def _load_stack(path: str) -> tuple[np.ndarray, float]:
    from repro.density import read_mrc

    data, apix = read_mrc(path)
    if data.ndim == 2:
        data = data[None]
    return data, apix


#: CLI-layer defaults that differ from the engine's own (the CLI ships a
#: short demo schedule, not the paper's production one).  Applied as the
#: base overlay of :func:`repro.engine.resolve.resolve_config`, so a
#: config file or an explicit flag always beats them.
_CLI_BASE = {
    "schedule.levels": [[1.0, 1.0, 3, 1], [0.5, 0.5, 3, 1]],
    "max_slides": 2,
}


def _normalize_refine_args(
    args: argparse.Namespace, defaults: dict[str, object] = _REFINE_DEFAULTS
) -> set[str]:
    """Record which tunables were typed, then fill in the defaults.

    The parser declares tunables with ``default=argparse.SUPPRESS`` so only
    explicit options appear on the namespace; this returns that set and
    makes every remaining attribute concrete for validation and execution.
    """
    explicit = {name for name in defaults if hasattr(args, name)}
    for name, value in defaults.items():
        if name not in explicit:
            setattr(args, name, value)
    return explicit


def _refine_flag_overrides(
    args: argparse.Namespace, explicit: set[str]
) -> dict[str, object]:
    """The dotted-path overrides this invocation's *explicit* flags carry.

    An option the user did not type contributes nothing, so config-file
    fields are only overridden by options actually present on the command
    line — even ones spelled identically to their default.
    """

    def changed(name: str) -> bool:
        return name in explicit

    flags: dict[str, object] = {}
    if changed("levels") or changed("half_steps"):
        steps = _parse_levels(args.levels)
        flags["schedule.levels"] = [[s, s, args.half_steps, 1] for s in steps]
    if changed("max_slides"):
        flags["max_slides"] = args.max_slides
    if changed("r_max"):
        flags["r_max"] = args.r_max
    if changed("kernel"):
        flags["kernel.kernel"] = args.kernel
    if changed("no_memo"):
        flags["memo.enabled"] = not args.no_memo
    if changed("no_centers"):
        flags["refine_centers"] = not args.no_centers
    if changed("workers"):
        flags["parallel.n_workers"] = args.workers
        flags["parallel.backend"] = "serial" if args.workers == 1 else "process"
    if changed("ranks") and args.ranks > 0:
        flags["parallel.backend"] = "sim"
        flags["parallel.n_ranks"] = args.ranks
    if changed("iterations"):
        flags["iteration.max_iterations"] = args.iterations
    if changed("fsc_threshold"):
        flags["iteration.fsc_threshold"] = args.fsc_threshold
    if changed("min_improvement"):
        flags["iteration.min_improvement_angstrom"] = args.min_improvement
    if changed("r_max_schedule") and args.r_max_schedule is not None:
        flags["iteration.r_max_schedule"] = list(args.r_max_schedule)
    if changed("no_streaming"):
        flags["iteration.streaming"] = not args.no_streaming
    if changed("checkpoint"):
        flags["checkpoint.path"] = args.checkpoint
    if changed("resume"):
        flags["checkpoint.resume"] = args.resume
    if changed("prune"):
        flags["prune.enabled"] = args.prune
    if changed("polish"):
        flags["polish.enabled"] = args.polish
    if changed("symmetry"):
        flags["symmetry.mode"] = args.symmetry
    return flags


def _resolve_refine_config(
    parser: argparse.ArgumentParser, args: argparse.Namespace, explicit: set[str]
):
    """Layer defaults < CLI base < config file < env < flags; exit 2 on junk."""
    from repro.engine import ConfigError, resolve_config

    try:
        return resolve_config(
            args.config_path,
            base=_CLI_BASE,
            flags=_refine_flag_overrides(args, explicit),
        )
    except ConfigError as exc:
        parser.error(str(exc))


def _cmd_refine(
    args: argparse.Namespace, parser: argparse.ArgumentParser, explicit: set[str]
) -> int:
    resolved = _resolve_refine_config(parser, args, explicit)
    if args.dry_run:
        from repro.engine.resolve import describe_environment

        print(resolved.describe())
        print(describe_environment())
        return 0

    from repro.density import DensityMap, read_mrc
    from repro.engine import RefinementEngine
    from repro.refine import read_orientation_file

    config = resolved.config
    map_data, map_apix = read_mrc(args.map_path)
    density = DensityMap(map_data, map_apix)
    stack, _ = _load_stack(args.stack)
    init, _ = read_orientation_file(args.orient)
    engine = RefinementEngine(config)
    if config.parallel.backend == "sim":
        from repro.imaging.simulate import SimulatedViews

        views = SimulatedViews(
            images=stack, true_orientations=init, initial_orientations=init,
            ctf_params=None, apix=density.apix,
        )
        run = engine.run(views, density, orientation_file=args.out)
        report = run.report
        assert report is not None
        print(
            f"refined {len(init)} views on {config.parallel.n_ranks} simulated ranks; "
            f"virtual time {report.simulated_total_seconds:.2f} s; wrote {args.out}"
        )
    else:
        run = engine.run(
            stack, density, initial_orientations=init, orientation_file=args.out
        )
        result = run.result
        assert result is not None
        print(
            f"refined {len(init)} views; {result.stats.total_matches:,} matchings; wrote {args.out}"
        )
    if run.perf is not None:
        print(f"perf: {run.perf.summary()}")
    return 0


def _cmd_determine(
    args: argparse.Namespace, parser: argparse.ArgumentParser, explicit: set[str]
) -> int:
    resolved = _resolve_refine_config(parser, args, explicit)
    if args.dry_run:
        from repro.engine.resolve import describe_environment

        print(resolved.describe())
        print(describe_environment())
        return 0

    from repro.density import DensityMap, read_mrc, write_mrc
    from repro.reconstruct import determine_structure
    from repro.refine import read_orientation_file, write_orientation_file

    config = resolved.config
    map_data, map_apix = read_mrc(args.map_path)
    density = DensityMap(map_data, map_apix)
    stack, _ = _load_stack(args.stack)
    init, _ = read_orientation_file(args.orient)
    result = determine_structure(
        stack, density, config, initial_orientations=init
    )
    for rec in result.history:
        tag = " (replayed)" if rec.resumed else ""
        r_max = "full" if rec.r_max is None else f"{rec.r_max:g}"
        print(
            f"iteration {rec.iteration}: resolution {rec.resolution_angstrom:.2f} A "
            f"(FSC {config.iteration.fsc_threshold:g}), mean distance "
            f"{rec.mean_distance:.4f}, r_max {r_max}{tag}"
        )
    write_orientation_file(args.out, result.final_orientations)
    wrote = args.out
    if args.out_map:
        final = result.final_map
        write_mrc(args.out_map, final.data, apix=final.apix)
        wrote = f"{args.out}, {args.out_map}"
    print(
        f"stopped after {len(result.history)} iteration(s): {result.stop_reason}; "
        f"wrote {wrote}"
    )
    if result.perf is not None:
        print(f"perf: {result.perf.summary()}")
    return 0


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    from repro.density import write_mrc
    from repro.reconstruct import reconstruct_from_views
    from repro.refine import read_orientation_file

    stack, apix = _load_stack(args.stack)
    orients, _ = read_orientation_file(args.orient)
    if len(orients) != stack.shape[0]:
        print(
            f"error: {len(orients)} orientations vs {stack.shape[0]} views", file=sys.stderr
        )
        return 2
    density = reconstruct_from_views(stack, orients, apix=apix, pad_factor=args.pad)
    write_mrc(args.out, density.data, apix=apix)
    print(f"reconstructed {stack.shape[0]} views -> {args.out}")
    return 0


def _cmd_detect_symmetry(args: argparse.Namespace) -> int:
    from repro.density import DensityMap, read_mrc
    from repro.refine import detect_symmetry

    data, apix = read_mrc(args.map_path)
    density = DensityMap(data, apix)
    result = detect_symmetry(
        density, max_order=args.max_order, n_axes=args.axes, seed=args.seed
    )
    axes = ", ".join(f"{o}-fold" for _, o, _ in result.axes) or "none"
    print(f"group: {result.group_name} (order {result.group.order}); axes: {axes}")
    return 0


def _cmd_resolution(args: argparse.Namespace) -> int:
    from repro.reconstruct import correlation_curve
    from repro.refine import read_orientation_file

    stack, apix = _load_stack(args.stack)
    orients, _ = read_orientation_file(args.orient)
    curve = correlation_curve(stack, orients, apix=apix)
    res = curve.crossing(args.threshold)
    for shell, r, cc in zip(curve.shells, curve.resolution_angstrom, curve.cc):
        print(f"shell {int(shell):3d}  {r:8.2f} A   cc {cc:+.3f}")
    print(f"{args.threshold}-crossing resolution: {res:.2f} A")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (0 = success)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "refine":
        explicit = _normalize_refine_args(args)
        validate_refine_args(parser, args)
        return _cmd_refine(args, parser, explicit)
    if args.command == "determine":
        explicit = _normalize_refine_args(args, _DETERMINE_DEFAULTS)
        _validate_determine_args(parser, args)
        return _cmd_determine(args, parser, explicit)
    handlers = {
        "simulate": _cmd_simulate,
        "reconstruct": _cmd_reconstruct,
        "detect-symmetry": _cmd_detect_symmetry,
        "resolution": _cmd_resolution,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
