"""RL001 fixture: wall clock + stdlib random + unseeded RNG in a kernel module."""

from __future__ import annotations

import random
import time

import numpy as np


def jitter(n):
    random.shuffle([])
    started = time.perf_counter()
    rng = np.random.default_rng()
    return rng.standard_normal(n) + np.random.rand(n) + started
