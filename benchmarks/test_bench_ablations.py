"""E13 — ablations of the design choices called out in DESIGN.md/§3–4.

* interpolation order (nearest vs trilinear) and transform oversampling —
  the accuracy levers of the "cuts of D̂" machinery;
* distance weighting wt(j,k) (§3: "give more weight to higher frequency
  components");
* plain vs scale-normalized distance (our robustness extension);
* multi-resolution vs single fine-level search (accuracy per matching op).
"""

import numpy as np
import pytest

from repro.align import DistanceComputer, match_view, orientation_window, radius_weights
from repro.density import asymmetric_phantom
from repro.fourier.slicing import extract_slice
from repro.geometry import Orientation, orientation_distance_deg
from repro.imaging import real_project
from repro.fourier import centered_fft2
from repro.pipeline import format_table


@pytest.fixture(scope="module")
def scene():
    density = asymmetric_phantom(32, seed=2).normalized()
    truth = Orientation(58.3, 41.7, 23.9)
    view = centered_fft2(real_project(density.data, truth.matrix()))
    return density, truth, view


def _search_error(density, truth, view, pad, order, weights_kind):
    vft = density.fourier_oversampled(pad)
    w = None if weights_kind == "none" else radius_weights(32, weights_kind, 13)
    dc = DistanceComputer(32, r_max=13, weights=w)
    start = Orientation(truth.theta + 1.2, truth.phi - 0.8, truth.omega + 0.9)
    grid = orientation_window(start, 0.4, half_steps=4)
    res = match_view(view, vft, grid, distance_computer=dc, interpolation=order)
    return orientation_distance_deg(res.orientation, truth)


def test_ablation_interpolation_and_oversampling(benchmark, scene, save_artifact):
    density, truth, view = scene

    def run():
        rows = []
        for pad, order in [(1, "nearest"), (1, "trilinear"), (2, "trilinear"), (3, "trilinear")]:
            err = _search_error(density, truth, view, pad, order, "none")
            rows.append((pad, order, err))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    errs = {(p, o): e for p, o, e in rows}
    # trilinear beats nearest on the raw grid, oversampling helps further
    assert errs[(2, "trilinear")] <= errs[(1, "nearest")] + 1e-9
    assert errs[(2, "trilinear")] <= errs[(1, "trilinear")] + 0.3
    assert min(errs.values()) < 1.0

    table = format_table(
        ["oversampling", "interpolation", "angular error after one window (deg)"],
        [[p, o, f"{e:.3f}"] for p, o, e in rows],
        title="Ablation: cut interpolation and transform oversampling",
    )
    save_artifact("ablation_interpolation.txt", table)


def test_ablation_distance_weighting(benchmark, scene, save_artifact):
    density, truth, view = scene

    def run():
        return {
            kind: _search_error(density, truth, view, 2, "trilinear", kind)
            for kind in ("none", "radius", "radius2")
        }

    errs = benchmark.pedantic(run, rounds=1, iterations=1)
    # all variants must localize; radius weighting should not be worse by
    # much (it exists to help at high resolution / high noise)
    assert all(e < 1.5 for e in errs.values())

    table = format_table(
        ["wt(j,k)", "angular error (deg)"],
        [[k, f"{v:.3f}"] for k, v in errs.items()],
        title="Ablation: the sec. 3 radial weighting of the distance",
    )
    save_artifact("ablation_weighting.txt", table)


def test_ablation_normalized_distance_under_scale_error(benchmark, scene, save_artifact):
    """The plain paper distance breaks under a mis-scaled map; the
    normalized variant does not — quantifying why reconstruction scale
    fidelity matters (see repro.reconstruct.direct_fourier)."""
    density, truth, view = scene

    def run():
        out = {}
        for normalized in (False, True):
            vft = density.fourier_oversampled(2) * 3.0  # mis-scaled map
            dc = DistanceComputer(32, r_max=13, normalized=normalized)
            start = Orientation(truth.theta + 1.2, truth.phi - 0.8, truth.omega + 0.9)
            grid = orientation_window(start, 0.4, half_steps=4)
            res = match_view(view, vft, grid, distance_computer=dc)
            out["normalized" if normalized else "plain"] = orientation_distance_deg(
                res.orientation, truth
            )
        return out

    errs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert errs["normalized"] < 1.0
    assert errs["plain"] > errs["normalized"]

    table = format_table(
        ["distance", "angular error with 3x mis-scaled map (deg)"],
        [[k, f"{v:.3f}"] for k, v in errs.items()],
        title="Ablation: plain (paper) vs scale-normalized distance",
    )
    table += "\n\nthe plain distance requires a correctly scaled map; normalization removes that coupling"
    save_artifact("ablation_normalized.txt", table)


def test_ablation_kaiser_bessel_gridding(benchmark, save_artifact):
    """Interpolation quality ladder against an analytically-known transform:
    nearest < trilinear < trilinear+oversampling < Kaiser-Bessel gridding
    (the modern upgrade to the paper-era trilinear cuts)."""
    from repro.density.map import DensityMap
    from repro.density.phantom import gaussian_blob
    from repro.fourier import (
        KaiserBesselKernel,
        gridding_extract_slice,
        prepare_gridding_volume,
    )
    from repro.fourier.shells import circular_mask
    from repro.fourier.slicing import extract_slice
    from repro.geometry import euler_to_matrix

    l = 24
    pos = np.array([4.0, -3.0, 5.0])
    sigma = 2.0
    density = DensityMap(gaussian_blob(l, pos, sigma))
    band = circular_mask(l, 9.0)
    c = l // 2
    k = np.arange(l) - c
    ky, kx = np.meshgrid(k, k, indexing="ij")

    def exact(rot):
        u, v = rot[:, 0], rot[:, 1]
        k3 = kx[..., None] * u + ky[..., None] * v
        amp = (2 * np.pi * sigma**2) ** 1.5 * np.exp(
            -2 * np.pi**2 * sigma**2 * (k3**2).sum(-1) / l**2
        )
        return amp * np.exp(-2j * np.pi * (k3 @ pos) / l)

    def run():
        kernel = KaiserBesselKernel.for_oversampling(width=4.0, oversampling=2.0)
        vols = {
            "nearest (pad 1)": (density.fourier(), "nearest", None),
            "trilinear (pad 1)": (density.fourier(), "trilinear", None),
            "trilinear (pad 2)": (density.fourier_oversampled(2), "trilinear", None),
            "Kaiser-Bessel (pad 2)": (prepare_gridding_volume(density, kernel, 2), None, kernel),
        }
        out = {}
        for name, (vol, order, kern) in vols.items():
            err = 0.0
            ref = 0.0
            for angles in [(37, 61, 23), (80, 15, 140), (55, 200, 10)]:
                rot = euler_to_matrix(*angles)
                expected = exact(rot)
                if kern is None:
                    cut = extract_slice(vol, rot, order=order, out_size=l)
                else:
                    cut = gridding_extract_slice(vol, rot, kern, out_size=l)
                err += np.abs(cut - expected)[band].sum()
                ref += np.abs(expected)[band].sum()
            out[name] = err / ref
        return out

    errs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert errs["trilinear (pad 1)"] < errs["nearest (pad 1)"]
    assert errs["trilinear (pad 2)"] < errs["trilinear (pad 1)"]
    assert errs["Kaiser-Bessel (pad 2)"] < 0.2 * errs["trilinear (pad 2)"]

    table = format_table(
        ["interpolation", "relative band error vs analytic FT"],
        [[k, f"{v:.5f}"] for k, v in errs.items()],
        title="Ablation: cut interpolation quality ladder",
    )
    table += "\n\nthe paper used trilinear; Kaiser-Bessel gridding is the modern upgrade"
    save_artifact("ablation_gridding.txt", table)


def test_ablation_multires_vs_single_level(benchmark, scene, save_artifact):
    """Accuracy per matching operation: the multi-resolution schedule
    reaches the same accuracy as a single fine scan at a fraction of the
    matchings (the engine behind the sec. 4 arithmetic)."""
    density, truth, view = scene
    from repro.refine import refine_view_at_level

    vft = density.fourier_oversampled(2)
    dc = DistanceComputer(32, r_max=13)
    start = Orientation(truth.theta + 2.3, truth.phi - 1.9, truth.omega + 2.1)

    def run():
        # multi-resolution: 1.0 then 0.25, small windows
        o = start
        total_multi = 0
        for step, hs in ((1.0, 3), (0.25, 3)):
            r = refine_view_at_level(
                view, vft, o, step, 1.0, half_steps=hs, center_half_steps=0,
                distance_computer=dc, refine_centers=False,
            )
            o = r.orientation
            total_multi += r.n_matches
        err_multi = orientation_distance_deg(o, truth)
        # single level at 0.25 deg wide enough to cover the same domain
        r = refine_view_at_level(
            view, vft, start, 0.25, 1.0, half_steps=13, center_half_steps=0,
            distance_computer=dc, refine_centers=False, max_slides=0,
        )
        err_single = orientation_distance_deg(r.orientation, truth)
        return err_multi, total_multi, err_single, r.n_matches

    err_multi, n_multi, err_single, n_single = benchmark.pedantic(run, rounds=1, iterations=1)
    assert err_multi < err_single + 0.3  # same accuracy class
    assert n_multi < 0.25 * n_single  # at a fraction of the matchings

    table = format_table(
        ["strategy", "matchings", "final error (deg)"],
        [
            ["multi-resolution 1.0 -> 0.25", n_multi, f"{err_multi:.3f}"],
            ["single fine scan at 0.25", n_single, f"{err_single:.3f}"],
        ],
        title="Ablation: multi-resolution vs one-shot fine search (live run)",
    )
    save_artifact("ablation_multires.txt", table)
