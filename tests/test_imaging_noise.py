"""Tests for noise injection and SNR estimation."""

import numpy as np
import pytest

from repro.imaging import add_noise, estimate_snr


def test_add_noise_hits_requested_snr(phantom16, rng):
    img = phantom16.data.sum(axis=0)
    big = np.tile(img, (4, 4))  # more pixels -> tighter variance estimate
    noisy = add_noise(big, snr=2.0, seed=0)
    measured = estimate_snr(noisy, big)
    assert measured == pytest.approx(2.0, rel=0.15)


def test_add_noise_infinite_snr_is_copy(phantom16):
    img = phantom16.data.sum(axis=0)
    out = add_noise(img, snr=np.inf)
    assert np.array_equal(out, img)
    assert out is not img


def test_add_noise_deterministic(phantom16):
    img = phantom16.data.sum(axis=0)
    a = add_noise(img, 1.0, seed=5)
    b = add_noise(img, 1.0, seed=5)
    assert np.array_equal(a, b)


def test_add_noise_validation(phantom16):
    img = phantom16.data.sum(axis=0)
    with pytest.raises(ValueError):
        add_noise(img, snr=0.0)
    with pytest.raises(ValueError):
        add_noise(np.zeros((8, 8)), snr=1.0)


def test_estimate_snr_perfect():
    img = np.arange(64.0).reshape(8, 8)
    assert estimate_snr(img, img) == np.inf


def test_estimate_snr_shape_mismatch():
    with pytest.raises(ValueError):
        estimate_snr(np.zeros((4, 4)), np.zeros((8, 8)))
