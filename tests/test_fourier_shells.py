"""Tests for shells, masks and FSC."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fourier import (
    fsc_curve,
    radial_shell_indices_2d,
    radial_shell_indices_3d,
    ring_correlation,
    shell_average,
    spherical_mask,
)
from repro.fourier.shells import circular_mask


def test_shell_indices_center_zero():
    s2 = radial_shell_indices_2d(16)
    assert s2[8, 8] == 0
    s3 = radial_shell_indices_3d(8)
    assert s3[4, 4, 4] == 0


def test_shell_indices_values():
    s = radial_shell_indices_2d(16)
    assert s[8, 9] == 1
    assert s[8, 12] == 4
    assert s[9, 9] == 1  # rounds sqrt(2) to 1


@given(size=st.integers(min_value=4, max_value=40))
@settings(max_examples=20)
def test_shells_partition_all_pixels(size):
    s = radial_shell_indices_2d(size)
    assert s.min() == 0
    assert s.max() <= int(np.ceil(np.sqrt(2) * size / 2)) + 1


def test_masks_monotone_in_radius():
    small = spherical_mask(16, 3.0)
    large = spherical_mask(16, 6.0)
    assert small.sum() < large.sum()
    assert np.all(large[small])


def test_circular_mask_counts():
    m = circular_mask(32, 5.0)
    assert abs(m.sum() - np.pi * 25) / (np.pi * 25) < 0.15


def test_shell_average_constant_field():
    x = np.full((16, 16), 3.0)
    avg = shell_average(x)
    assert np.allclose(avg, 3.0)


def test_shell_average_radial_field():
    s = radial_shell_indices_2d(32).astype(float)
    avg = shell_average(s)
    assert np.allclose(avg, np.arange(len(avg)), atol=1e-9)


def test_shell_average_3d_and_complex(rng):
    x = rng.normal(size=(8, 8, 8)) + 1j * rng.normal(size=(8, 8, 8))
    avg = shell_average(x)
    assert np.iscomplexobj(avg)
    assert len(avg) == 5


def test_shell_average_rejects_1d():
    with pytest.raises(ValueError):
        shell_average(np.zeros(8))


def test_fsc_identical_maps_is_one(phantom16):
    fsc = fsc_curve(phantom16.data, phantom16.data)
    assert np.allclose(fsc, 1.0, atol=1e-9)


def test_fsc_independent_noise_near_zero(rng):
    a = rng.normal(size=(16, 16, 16))
    b = rng.normal(size=(16, 16, 16))
    fsc = fsc_curve(a, b)
    assert np.abs(fsc[2:]).mean() < 0.3


def test_fsc_degrades_with_noise(phantom16, rng):
    clean = phantom16.data
    noisy = clean + 2.0 * clean.std() * rng.normal(size=clean.shape)
    fsc = fsc_curve(clean, noisy)
    assert fsc[1] > 0.5
    assert fsc[1] > fsc[7]


def test_fsc_scale_invariant(phantom16):
    fsc = fsc_curve(phantom16.data, 7.5 * phantom16.data)
    # shell 0 is the DC term, which is ~0 for a normalized (zero-mean) map
    # and therefore numerically unstable; the physical shells must all be 1
    assert np.allclose(fsc[1:], 1.0, atol=1e-9)


def test_fsc_shape_mismatch():
    with pytest.raises(ValueError):
        fsc_curve(np.zeros((8, 8, 8)), np.zeros((16, 16, 16)))


def test_ring_correlation_2d(phantom16, rng):
    img = phantom16.data.sum(axis=0)
    frc = ring_correlation(img, img + 0.1 * img.std() * rng.normal(size=img.shape))
    assert frc[1] > 0.9
    frc_self = ring_correlation(img, img)
    assert np.allclose(frc_self, 1.0, atol=1e-9)
