"""Known-bad fixture: bare ``except:`` in recovery code (RL009)."""

from __future__ import annotations

__all__ = ["swallow_everything"]


def swallow_everything(work) -> bool:
    try:
        work()
    except:  # noqa: E722 - the point of the fixture
        return False
    return True
