"""Minimal MRC2014 reader/writer (``mrcfile`` is not installable offline).

Implements the subset of the MRC2014 format the pipeline needs: mode 2
(float32) 3D volumes and 2D images / image stacks, with correct header
fields for dimensions, mode, cell size (voxel spacing), axis mapping and
density statistics.  Files written here load in standard EM software and
round-trip exactly through :func:`read_mrc`.

Header layout reference: https://www.ccpem.ac.uk/mrc_format/mrc2014.php
"""

from __future__ import annotations

import numpy as np

from repro.utils import require_positive

__all__ = ["read_mrc", "write_mrc", "MRC_HEADER_BYTES"]

MRC_HEADER_BYTES = 1024

_MODE_DTYPES = {
    0: np.dtype(np.int8),
    1: np.dtype(np.int16),
    2: np.dtype(np.float32),
    6: np.dtype(np.uint16),
}


def _header_dtype() -> np.dtype:
    return np.dtype(
        [
            ("nx", "<i4"),
            ("ny", "<i4"),
            ("nz", "<i4"),
            ("mode", "<i4"),
            ("nxstart", "<i4"),
            ("nystart", "<i4"),
            ("nzstart", "<i4"),
            ("mx", "<i4"),
            ("my", "<i4"),
            ("mz", "<i4"),
            ("cella", "<f4", 3),
            ("cellb", "<f4", 3),
            ("mapc", "<i4"),
            ("mapr", "<i4"),
            ("maps", "<i4"),
            ("dmin", "<f4"),
            ("dmax", "<f4"),
            ("dmean", "<f4"),
            ("ispg", "<i4"),
            ("nsymbt", "<i4"),
            ("extra", "V100"),
            ("origin", "<f4", 3),
            ("map", "S4"),
            ("machst", "V4"),
            ("rms", "<f4"),
            ("nlabl", "<i4"),
            ("labels", "S80", 10),
        ]
    )


def write_mrc(path: str, data: np.ndarray, apix: float = 1.0) -> None:
    """Write a 2D image or 3D volume as MRC2014 mode 2 (float32).

    The array is stored in the MRC axis order (section, row, column) =
    our ``[z, y, x]`` convention, so no transposition occurs.
    """
    arr = np.asarray(data, dtype=np.float32)
    require_positive(apix, "apix")
    if arr.ndim == 2:
        arr = arr[None, ...]
    if arr.ndim != 3:
        raise ValueError(f"MRC data must be 2D or 3D, got {np.asarray(data).ndim}D")
    nz, ny, nx = arr.shape
    header = np.zeros((), dtype=_header_dtype())
    header["nx"], header["ny"], header["nz"] = nx, ny, nz
    header["mode"] = 2
    header["mx"], header["my"], header["mz"] = nx, ny, nz
    header["cella"] = (nx * apix, ny * apix, nz * apix)
    header["cellb"] = (90.0, 90.0, 90.0)
    header["mapc"], header["mapr"], header["maps"] = 1, 2, 3
    header["dmin"] = float(arr.min())
    header["dmax"] = float(arr.max())
    header["dmean"] = float(arr.mean())
    header["rms"] = float(arr.std())
    header["ispg"] = 1 if nz > 1 else 0
    header["map"] = b"MAP "
    header["machst"] = np.frombuffer(bytes([0x44, 0x44, 0x00, 0x00]), dtype="V4")[0]
    header["nlabl"] = 1
    labels = np.zeros(10, dtype="S80")
    labels[0] = b"repro: IPPS-2003 orientation refinement reproduction"
    header["labels"] = labels
    with open(path, "wb") as fh:
        fh.write(header.tobytes())
        fh.write(arr.tobytes())


def read_mrc(path: str) -> tuple[np.ndarray, float]:
    """Read an MRC file; returns ``(data, apix)``.

    Data comes back as float64 with shape ``(nz, ny, nx)`` (2D images keep a
    leading singleton axis removed).  Only the common little-endian modes
    0/1/2/6 are supported.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) < MRC_HEADER_BYTES:
        raise ValueError(f"{path}: file too short to hold an MRC header")
    header = np.frombuffer(raw[:MRC_HEADER_BYTES], dtype=_header_dtype())[0]
    if bytes(header["map"]) not in (b"MAP ", b"MAP\x00"):
        raise ValueError(f"{path}: missing MRC2014 'MAP ' magic")
    mode = int(header["mode"])
    if mode not in _MODE_DTYPES:
        raise ValueError(f"{path}: unsupported MRC mode {mode}")
    nx, ny, nz = int(header["nx"]), int(header["ny"]), int(header["nz"])
    if min(nx, ny, nz) <= 0:
        raise ValueError(f"{path}: invalid dimensions {(nx, ny, nz)}")
    nsymbt = int(header["nsymbt"])
    dtype = _MODE_DTYPES[mode]
    start = MRC_HEADER_BYTES + nsymbt
    count = nx * ny * nz
    expected = start + count * dtype.itemsize
    if len(raw) < expected:
        raise ValueError(f"{path}: truncated data section ({len(raw)} < {expected} bytes)")
    data = np.frombuffer(raw[start : start + count * dtype.itemsize], dtype=dtype)
    data = data.reshape(nz, ny, nx).astype(float)
    mx = max(int(header["mx"]), 1)
    cell_x = float(header["cella"][0])
    apix = cell_x / mx if cell_x > 0 else 1.0
    if nz == 1:
        data = data[0]
    return data, apix
