"""Per-view refinement at one resolution level (steps f–l combined).

One level of refinement for one view alternates the angular sliding-window
search (with the view corrected to its current center estimate) and the
center box search (against the winning cut).  The orientation *and* center
both live in the :class:`~repro.geometry.euler.Orientation` record, so the
multi-resolution driver simply threads it through the levels.

Two kernels are available.  The default ``kernel="fused"`` gathers the
view's in-band samples once and runs every window, slide, and center box
on band vectors only (see :mod:`repro.align.fused`); ``kernel="reference"``
is the original slice-then-distance path, kept as a checkable slow
implementation — the two produce numerically identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.align.distance import DistanceComputer
from repro.align.fused import get_match_plan
from repro.align.memo import OrientationMemo
from repro.arraytypes import Array
from repro.fourier.slicing import extract_slice
from repro.geometry.euler import Orientation
from repro.imaging.center import phase_shift_ft
from repro.perf import PerfCounters
from repro.refine.center_refine import refine_center
from repro.refine.prune import PruneParams
from repro.refine.window import sliding_window_search

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a refine cycle)
    from repro.refine.restrict import SymmetryRestriction

__all__ = ["ViewRefinementResult", "refine_view_at_level"]


@dataclass(frozen=True)
class ViewRefinementResult:
    """Bookkeeping for one view × one level.

    ``n_matches`` counts angular matching operations, ``n_center_evals``
    center evaluations; ``slid_window`` / ``slid_center`` record whether the
    respective sliding mechanisms fired (the §5 observation).  ``basins``
    carries the top-k distinct orientations of the winning seed's last
    window search when multi-basin pruning is on (empty otherwise) — the
    next level's seeds.
    """

    orientation: Orientation
    distance: float
    n_windows: int
    n_matches: int
    n_center_evals: int
    slid_window: bool
    slid_center: bool
    basins: tuple[Orientation, ...] = ()


def refine_view_at_level(
    view_ft: Array,
    volume_ft: Array,
    orientation: Orientation,
    angular_step_deg: float,
    center_step_px: float,
    half_steps: int | tuple[int, int, int] = 4,
    center_half_steps: int = 1,
    max_slides: int = 8,
    distance_computer: DistanceComputer | None = None,
    interpolation: str = "trilinear",
    refine_centers: bool = True,
    inner_iterations: int = 2,
    cut_modulation: Array | None = None,
    kernel: str = "fused",
    memo: OrientationMemo | None = None,
    counters: PerfCounters | None = None,
    prune: PruneParams | None = None,
    seed_basins: tuple[Orientation, ...] | None = None,
    symmetry: "SymmetryRestriction | None" = None,
) -> ViewRefinementResult:
    """Steps f–l for one view at one (r_angular, δ_center) level.

    ``view_ft`` must already be CTF-corrected (step e) but NOT
    center-corrected: the current center estimate in ``orientation`` is
    applied here, and the refined center replaces it in the result.

    ``inner_iterations`` alternates the center search and the angular
    search: the two estimates are coupled (a wrong center superimposes a
    phase ramp on the whole band, corrupting the angular landscape, and
    vice versa).  Each inner iteration therefore refines the center
    *first*, against the cut at the current orientation — the center fit is
    robust to moderate angular error, the reverse is not — and then runs
    the angular window with the corrected center.  The loop exits early
    once neither estimate changes.

    ``kernel`` selects the matching implementation: ``"fused"`` (default,
    in-band only), ``"batched"`` (in-band, whole-window engine with the
    optional per-view orientation ``memo`` and ``counters``) or
    ``"reference"`` (full cut stacks).  All three produce identical
    numbers; ``memo`` / ``counters`` are ignored outside ``"batched"``.

    ``prune`` enables the early-termination bound inside each window scan
    (batched kernel only).  ``seed_basins`` — the previous level's top-k
    basin centers — fans the whole level out once per seed (capped at
    ``prune.top_k``); the best seed's result wins, operation counts are
    summed over all seeds, and the winner's own basins are reported for
    the next level.

    ``symmetry`` (a :class:`~repro.refine.restrict.SymmetryRestriction`,
    batched kernel only) canonicalizes the incoming seed(s) into the
    asymmetric unit before searching — the local window walk then stays
    near the AU by construction — and threads the group into the window
    search so memo keys canonicalize modulo G (DESIGN.md §13).
    """
    if inner_iterations < 1:
        raise ValueError("inner_iterations must be >= 1")
    if kernel not in ("fused", "batched", "reference"):
        raise ValueError(f"unknown kernel {kernel!r}")
    fused = kernel in ("fused", "batched")
    if fused:
        dc = distance_computer or DistanceComputer(view_ft.shape[0])
        plan = get_match_plan(dc, volume_ft.shape[0], interpolation)
        view_band = plan.gather_view(view_ft)
    else:
        dc = distance_computer
        plan = None
        view_band = None

    def _center_pass(current: Orientation) -> tuple[Orientation, float, int, bool]:
        if fused:
            cut_band = plan.cut_band(volume_ft, current.matrix())
            center = refine_center(
                None,
                None,
                center=(current.cx, current.cy),
                step_px=center_step_px,
                half_steps=center_half_steps,
                max_slides=max_slides,
                cut_modulation=cut_modulation,
                kernel="fused",
                plan=plan,
                view_band=view_band,
                cut_band=cut_band,
            )
        else:
            cut = extract_slice(
                volume_ft, current.matrix(), order=interpolation, out_size=view_ft.shape[0]
            )
            center = refine_center(
                view_ft,
                cut,
                center=(current.cx, current.cy),
                step_px=center_step_px,
                half_steps=center_half_steps,
                max_slides=max_slides,
                distance_computer=dc,
                cut_modulation=cut_modulation,
                kernel="reference",
            )
        return (
            current.with_center(center.cx, center.cy),
            center.distance,
            center.n_evaluations,
            center.slid,
        )

    def _refine_from(start: Orientation) -> ViewRefinementResult:
        current = start
        n_windows_total = 0
        n_matches_total = 0
        n_center_total = 0
        slid_window = False
        slid_center = False
        distance = np.inf
        basins: tuple[Orientation, ...] = ()
        for _ in range(inner_iterations if refine_centers else 1):
            previous = current
            if refine_centers:
                current, distance, n_evals, slid = _center_pass(current)
                n_center_total += n_evals
                slid_center = slid_center or slid
            # step f prerequisite: correct the view to the current center estimate
            if fused:
                corrected_band = plan.phase_shift_band(view_band, -current.cx, -current.cy)
                window = sliding_window_search(
                    None,
                    volume_ft,
                    current,
                    step_deg=angular_step_deg,
                    half_steps=half_steps,
                    max_slides=max_slides,
                    cut_modulation=cut_modulation,
                    kernel=kernel,
                    plan=plan,
                    view_band=corrected_band,
                    memo=memo,
                    memo_center=(current.cx, current.cy),
                    counters=counters,
                    prune=prune,
                    symmetry=symmetry if kernel == "batched" else None,
                )
            else:
                corrected = view_ft
                if current.cx != 0.0 or current.cy != 0.0:
                    corrected = phase_shift_ft(view_ft, -current.cx, -current.cy)
                window = sliding_window_search(
                    corrected,
                    volume_ft,
                    current,
                    step_deg=angular_step_deg,
                    half_steps=half_steps,
                    max_slides=max_slides,
                    distance_computer=dc,
                    interpolation=interpolation,
                    cut_modulation=cut_modulation,
                    kernel="reference",
                    prune=prune,
                )
            current = window.orientation
            distance = window.distance
            basins = window.basins
            n_windows_total += window.n_windows
            n_matches_total += window.n_matches
            slid_window = slid_window or window.slid
            if current.as_tuple() == previous.as_tuple():
                break
        if refine_centers:
            # final polish: the last angular winner deserves a matching center
            current, distance, n_evals, slid = _center_pass(current)
            n_center_total += n_evals
            slid_center = slid_center or slid
        return ViewRefinementResult(
            orientation=current,
            distance=distance,
            n_windows=n_windows_total,
            n_matches=n_matches_total,
            n_center_evals=n_center_total,
            slid_window=slid_window,
            slid_center=slid_center,
            basins=basins,
        )

    seeds: tuple[Orientation, ...] = (orientation,)
    if seed_basins:
        limit = prune.top_k if prune is not None else len(seed_basins)
        seeds = tuple(seed_basins[:limit]) or seeds
    if symmetry is not None and kernel == "batched":
        seeds = tuple(symmetry.canonicalize(seed) for seed in seeds)
    results = [_refine_from(seed) for seed in seeds]
    best = min(results, key=lambda r: r.distance)
    if len(results) == 1:
        return best
    return ViewRefinementResult(
        orientation=best.orientation,
        distance=best.distance,
        n_windows=sum(r.n_windows for r in results),
        n_matches=sum(r.n_matches for r in results),
        n_center_evals=sum(r.n_center_evals for r in results),
        slid_window=any(r.slid_window for r in results),
        slid_center=any(r.slid_center for r in results),
        basins=best.basins,
    )
