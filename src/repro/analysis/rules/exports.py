"""RL004 — package ``__init__`` re-exports and ``__all__`` stay in sync.

The public API is what the ``__init__`` modules re-export; a name imported
but missing from ``__all__`` is invisible to ``import *`` users and to
type checkers following ``py.typed``, while an ``__all__`` entry that is
never imported is an API that does not exist.  Both directions are
machine-checkable, so they are checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule

__all__ = ["ExportListSync"]


class ExportListSync(Rule):
    rule_id = "RL004"
    name = "export-list-sync"
    rationale = (
        "Every public name a package __init__ imports or assigns must appear "
        "in its __all__, and every __all__ entry must exist — otherwise the "
        "typed public surface and the real one drift apart."
    )

    def applies(self, mod: ModuleUnderLint) -> bool:
        return super().applies(mod) and mod.rel.endswith("/__init__.py")

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        imported: dict[str, ast.AST] = {}
        assigned: dict[str, ast.AST] = {}
        all_node: ast.AST | None = None
        all_names: list[str] = []
        for node in mod.tree.body:
            if isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    name = alias.asname or alias.name
                    if name != "*":
                        imported[name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            all_node = node
                            try:
                                all_names = [str(v) for v in ast.literal_eval(node.value)]
                            except (ValueError, SyntaxError):
                                yield self.finding(mod, node, "__all__ must be a literal list of strings")
                                return
                        else:
                            assigned[target.id] = node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                assigned[node.name] = node
        if not imported and not assigned:
            return  # namespace-only __init__
        if all_node is None:
            yield self.finding(mod, 1, "package __init__ re-exports names but defines no __all__")
            return
        defined = set(imported) | set(assigned)
        for name in sorted(set(all_names) - defined):
            yield self.finding(mod, all_node, f"__all__ lists {name!r} but the module never "
                               "imports or defines it")
        public = {n for n in imported if not n.startswith("_")}
        listed = set(all_names)
        for name in sorted(public - listed):
            yield self.finding(mod, imported[name], f"{name!r} is re-exported but missing from __all__")
