"""Unit tests for the symbol-table / call-graph substrate (analysis.callgraph)."""

from pathlib import Path

from repro.analysis.callgraph import build_project, module_name_for_rel
from repro.analysis.lint import _module_from_source, parse_module

REPO = Path(__file__).resolve().parents[1]


def project_from(sources: dict[str, str]):
    mods = [_module_from_source(src, rel=rel, path=rel) for rel, src in sources.items()]
    return build_project(mods)


def edge_pairs(project):
    graph = project.graph()
    return {
        (site.caller, site.callee, site.kind)
        for sites in graph.edges.values()
        for site in sites
    }


# -- naming ------------------------------------------------------------------
def test_module_name_for_rel():
    assert module_name_for_rel("repro/align/fused.py") == "repro.align.fused"
    assert module_name_for_rel("repro/align/__init__.py") == "repro.align"
    assert module_name_for_rel("repro/__init__.py") == "repro"


# -- resolution --------------------------------------------------------------
def test_intra_module_call_edge():
    project = project_from(
        {
            "repro/a.py": (
                "def g():\n    return 1\n\n\n"
                "def f():\n    return g()\n"
            )
        }
    )
    assert ("repro.a:f", "repro.a:g", "call") in edge_pairs(project)


def test_cross_module_call_edge_via_import():
    project = project_from(
        {
            "repro/a.py": (
                "from repro.b import helper\n\n\n"
                "def f():\n    return helper()\n"
            ),
            "repro/b.py": "def helper():\n    return 2\n",
        }
    )
    assert ("repro.a:f", "repro.b:helper", "call") in edge_pairs(project)


def test_lazy_function_local_import_resolves():
    project = project_from(
        {
            "repro/a.py": (
                "def f():\n"
                "    from repro.b import helper\n"
                "    return helper()\n"
            ),
            "repro/b.py": "def helper():\n    return 2\n",
        }
    )
    assert ("repro.a:f", "repro.b:helper", "call") in edge_pairs(project)


def test_method_resolution_via_annotated_parameter():
    project = project_from(
        {
            "repro/a.py": (
                "from repro.b import Engine\n\n\n"
                "def f(eng: Engine):\n    return eng.step()\n"
            ),
            "repro/b.py": (
                "class Engine:\n"
                "    def step(self):\n        return 1\n"
            ),
        }
    )
    assert ("repro.a:f", "repro.b:Engine.step", "call") in edge_pairs(project)


def test_self_attribute_chain_resolves_through_init_types():
    project = project_from(
        {
            "repro/a.py": (
                "class Inner:\n"
                "    def compute(self):\n        return 1\n\n\n"
                "class Outer:\n"
                "    def __init__(self, inner: Inner):\n"
                "        self.inner = inner\n\n"
                "    def run_all(self):\n"
                "        return self.inner.compute()\n"
            )
        }
    )
    assert ("repro.a:Outer.run_all", "repro.a:Inner.compute", "call") in edge_pairs(project)


def test_callback_reference_counts_as_edge():
    project = project_from(
        {
            "repro/a.py": (
                "def cb():\n    return 1\n\n\n"
                "def f(register):\n    register(cb)\n"
            )
        }
    )
    assert ("repro.a:f", "repro.a:cb", "ref") in edge_pairs(project)


# -- pool submissions and reachability ---------------------------------------
def test_pool_submission_resolves_module_level_task():
    project = project_from(
        {
            "repro/parallel/a.py": (
                "def task(x):\n    return helper(x)\n\n\n"
                "def helper(x):\n    return x\n\n\n"
                "def fan_out(executor, xs):\n"
                "    return [executor.submit(task, x) for x in xs]\n"
            )
        }
    )
    graph = project.graph()
    subs = graph.pool_submissions
    assert len(subs) == 1
    assert subs[0].task is not None
    assert subs[0].task.node_id == "repro.parallel.a:task"
    reach = graph.reachable([subs[0].task.node_id])
    assert "repro.parallel.a:helper" in reach


def test_real_worker_chain_is_reachable():
    mods = [parse_module(p) for p in sorted((REPO / "src" / "repro").rglob("*.py"))]
    project = build_project(mods)
    graph = project.graph()
    tasks = [s.task.node_id for s in graph.pool_submissions if s.task is not None]
    assert "repro.parallel.viewsched:_worker_refine_chunk" in tasks
    reach = graph.reachable(tasks)
    # the full kernel chain crosses four packages from the pool task
    for expected in (
        "repro.parallel.viewsched:_attach_volume",
        "repro.refine.single:refine_view_at_level",
        "repro.align.fused:MatchPlan.match_window",
        "repro.align.distance:DistanceComputer.distance_band",
        "repro.fourier.slicing:extract_slice",
    ):
        assert expected in reach, expected


# -- static contracts --------------------------------------------------------
def test_contract_parsing_reads_shapes_and_dtypes():
    project = project_from(
        {
            "repro/a.py": (
                "from repro.analysis.contracts import array_contract, spec\n\n\n"
                "@array_contract(\n"
                "    band=spec(shape=('n',), dtype='inexact', allow_none=False),\n"
                "    rots=spec(shape=[(3, 3), (None, 3, 3)]),\n"
                "    ret=spec(shape=('n',)),\n"
                ")\n"
                "def f(band, rots):\n    return band\n"
            )
        }
    )
    fn = project.functions["repro.a:f"]
    assert fn.contract is not None
    band = fn.contract.params["band"]
    assert band.shape == (("n",),)
    assert band.dtype == "inexact"
    assert band.allow_none is False
    rots = fn.contract.params["rots"]
    assert rots.shape == ((3, 3), (None, 3, 3))
    assert fn.contract.ret is not None
    assert fn.contract.ret.shape == (("n",),)


def test_nested_function_is_not_module_level():
    project = project_from(
        {
            "repro/a.py": (
                "def outer():\n"
                "    def inner():\n        return 1\n"
                "    return inner\n"
            )
        }
    )
    inner = project.functions["repro.a:outer.<locals>.inner"]
    assert inner.is_nested and not inner.is_module_level
    outer = project.functions["repro.a:outer"]
    assert outer.is_module_level


def test_mutable_globals_are_indexed():
    project = project_from(
        {
            "repro/a.py": (
                "CACHE: dict[int, int] = {}\n"
                "LIMIT = 3\n"
                "NAMES = ['a']\n"
            )
        }
    )
    minfo = project.modules["repro.a"]
    assert minfo.mutable_globals == {"CACHE", "NAMES"}
    assert {"CACHE", "LIMIT", "NAMES"} <= minfo.global_names
