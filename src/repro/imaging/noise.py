"""Additive noise and SNR estimation for simulated views.

Cryo-EM views are extremely noisy (SNR well below 1 at high frequency);
the simulator adds white Gaussian noise scaled to a requested SNR defined
as signal variance / noise variance, measured over the whole box.

The scenario matrix (DESIGN.md §12) keys its low-SNR thresholds off this
calibration, so the mapping from requested SNR to noise sigma is exposed
as :func:`noise_sigma_for_snr` and pinned by a statistical test.  The
``exact`` mode rescales the drawn noise field so its *realized* variance
equals the requested one — removing the O(1/sqrt(npix)) sampling scatter
when a scenario wants the SNR to be a controlled variable rather than an
expectation.
"""

from __future__ import annotations

import numpy as np

from repro.utils import default_rng

__all__ = ["add_noise", "estimate_snr", "noise_sigma_for_snr"]


def noise_sigma_for_snr(image: np.ndarray, snr: float) -> float:
    """The noise std-dev that realizes ``snr = var(signal) / var(noise)``.

    ``snr = inf`` maps to sigma 0.  Raises for non-positive SNR or a
    constant image (whose signal variance cannot anchor a ratio).
    """
    img = np.asarray(image, dtype=float)
    if snr <= 0:
        raise ValueError("snr must be positive")
    if np.isinf(snr):
        return 0.0
    signal_var = float(img.var())
    if signal_var == 0:
        raise ValueError("cannot scale noise to a constant image")
    return float(np.sqrt(signal_var / snr))


def add_noise(
    image: np.ndarray,
    snr: float,
    seed: int | np.random.Generator | None = 0,
    exact: bool = False,
) -> np.ndarray:
    """Return ``image`` plus white Gaussian noise at the requested SNR.

    ``snr = var(signal) / var(noise)``.  ``snr = inf`` returns a copy.
    With ``exact=True`` the drawn noise field is recentred and rescaled so
    its realized variance equals ``var(signal) / snr`` exactly (up to
    float rounding), instead of only in expectation.
    """
    img = np.asarray(image, dtype=float)
    sigma = noise_sigma_for_snr(img, snr)
    if sigma == 0.0:
        return img.copy()
    rng = default_rng(seed)
    noise = rng.normal(0.0, sigma, size=img.shape)
    if exact:
        noise -= noise.mean()
        realized = float(noise.std())
        if realized == 0:
            raise ValueError("degenerate noise draw cannot be rescaled")
        noise *= sigma / realized
    return img + noise


def estimate_snr(noisy: np.ndarray, clean: np.ndarray) -> float:
    """Empirical SNR of a noisy realization against its clean original."""
    n = np.asarray(noisy, dtype=float)
    c = np.asarray(clean, dtype=float)
    if n.shape != c.shape:
        raise ValueError("shapes must match")
    noise = n - c
    nv = float(noise.var())
    if nv == 0:
        return float("inf")
    return float(c.var() / nv)
