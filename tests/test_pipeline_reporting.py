"""Tests for the paper-style text reporting."""

import numpy as np
import pytest

from repro.pipeline import format_curve, format_table, format_timing_table


def test_format_table_basic():
    text = format_table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_large_numbers():
    text = format_table(["n"], [[12345.0]])
    assert "12,345" in text


def test_format_timing_table_layout():
    rows = [
        {
            "angular_resolution_deg": 1.0,
            "search_range": 729.0,
            "3D DFT": 10.0,
            "Read image": 5.0,
            "FFT analysis": 2.0,
            "Orientation refinement": 4000.0,
            "Total": 4017.0,
        },
        {
            "angular_resolution_deg": 0.1,
            "search_range": 729.0,
            "3D DFT": 10.0,
            "Read image": 5.0,
            "FFT analysis": 2.0,
            "Orientation refinement": 4100.0,
            "Total": 4117.0,
        },
    ]
    text = format_timing_table(rows, title="Table 1")
    assert "Table 1" in text
    assert "Orientation refinement (s)" in text
    assert "4,100" in text
    assert "0.1" in text.splitlines()[1]


def test_format_timing_table_empty():
    with pytest.raises(ValueError):
        format_timing_table([])


def test_format_curve():
    x = np.array([20.0, 10.0, 5.0])
    text = format_curve(x, {"old": np.array([0.9, 0.5, 0.1]), "new": np.array([0.95, 0.7, 0.2])})
    assert "old" in text and "new" in text
    assert len(text.splitlines()) == 5
