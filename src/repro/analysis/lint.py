"""repro-lint: AST-based checks for this repo's correctness invariants.

PR 1 split every hot path into two kernels that must stay bit-identical
(fused vs reference) and a scheduler that must stay deterministic at any
worker count.  Those invariants are conventions — a centered-FFT grid
layout, seeded RNG plumbing, float32-free band math, one distance
reduction — that ordinary linters cannot see.  Each rule in
:mod:`repro.analysis.rules` encodes one of them as an AST check, so a
future perf PR that quietly breaks a convention fails the gate instead of
producing plausible-but-wrong orientations.

Two rule families run here:

* **per-module rules** (RL001–RL012) check one file at a time;
* **whole-program rules** (RL013–RL015, subclassing ``ProgramRule``)
  check the symbol-table/call-graph :class:`~repro.analysis.callgraph.Project`
  built over *all* the linted files — worker-path safety, exception-flow
  classification, and static contract propagation live on call edges no
  single file can see.

Usage (also via ``python -m repro.analysis``)::

    from repro.analysis.lint import lint_paths
    findings = lint_paths(["src/repro"])    # [] when clean

A finding can be waived *in place* with a justification comment on the
offending line (``allow[RL002]`` names the rule; ``allow[*]`` waives every
rule on the line; several ids may share one bracket, comma-separated)::

    local = np.fft.fft2(slab)  # repro-lint waiver comment naming the rule

Waivers are per-line and per-rule, and only real comments count — the
scanner tokenizes the source, so an ``allow[...]`` inside a string or
docstring is inert.  A standalone comment line waives the next code line
(so long justifications can sit above the code).  Each waiver is tracked:
one that suppresses nothing is *stale* and is reported by
:func:`lint_collect` (the gate warns by default and fails under
``--strict-waivers``).  Rule scoping (which paths a rule patrols) lives on
each rule class.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.rules import Rule

__all__ = [
    "Finding",
    "LintReport",
    "ModuleUnderLint",
    "STALE_WAIVER_RULE",
    "Waiver",
    "lint_collect",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_module",
    "relative_module_path",
]

_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9*,\s]+)\]")
_VALID_WAIVER_ID = re.compile(r"RL\d+\Z|\*\Z")

#: rule id under which stale waivers are reported (``--strict-waivers``).
STALE_WAIVER_RULE = "RLW01"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (the ``--format json`` gate output)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Waiver:
    """One ``allow[...]`` comment: where it sits and which lines it covers.

    ``line`` is the comment's own line; ``covers`` the set of lines whose
    findings it may suppress (the comment line itself, plus the next code
    line for a standalone comment).
    """

    line: int
    ids: frozenset[str]
    covers: frozenset[int]

    def suppresses(self, finding: Finding) -> bool:
        return finding.line in self.covers and ("*" in self.ids or finding.rule in self.ids)


@dataclass(frozen=True)
class ModuleUnderLint:
    """A parsed module plus the metadata rules need.

    ``rel`` is the package-relative posix path (``repro/align/fused.py``)
    that rule scoping matches against; ``path`` is the display path.
    """

    path: str
    rel: str
    source: str
    tree: ast.Module
    allow: dict[int, frozenset[str]]
    waivers: tuple[Waiver, ...] = ()

    def allows(self, line: int, rule_id: str) -> bool:
        waived = self.allow.get(line)
        return waived is not None and ("*" in waived or rule_id in waived)


def relative_module_path(path: Path) -> str:
    """Map a filesystem path to its ``repro/...`` package-relative form.

    Files outside any ``repro`` directory (ad-hoc fixtures) are treated as
    top-level ``repro/<name>`` modules so unscoped rules still apply.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return f"repro/{path.name}"


def _comment_lines(source: str) -> dict[int, tuple[int, str]] | None:
    """Real comment tokens by line: ``{line: (col, text)}``.

    Tokenizing (rather than regex-scanning every line) keeps waiver
    markers inside strings and docstrings inert.  Returns ``None`` when
    the source cannot be tokenized (the caller falls back to treating
    every line as a potential comment, the historical behavior).
    """
    comments: dict[int, tuple[int, str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = (tok.start[1], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None
    return comments


def _scan_waivers(source: str) -> tuple[Waiver, ...]:
    """Every ``allow[...]`` waiver comment with the lines it covers.

    An inline comment waives its own line; a standalone comment line
    waives the next code line (so long justifications can sit above the
    code).  Stacked standalone waiver comments all attach to the same
    next code line.  Ids that are not ``RL<digits>`` or ``*`` are dropped
    (prose like ``allow[RLxxx]`` in documentation never becomes a waiver).
    """
    comments = _comment_lines(source)
    waivers: list[Waiver] = []
    pending: list[tuple[int, frozenset[str]]] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        if comments is None:
            candidate: tuple[int, str] | None = (0, line)
        else:
            candidate = comments.get(lineno)
        match = _ALLOW_RE.search(candidate[1]) if candidate is not None else None
        stripped = line.strip()
        if match:
            ids = frozenset(
                tok.strip()
                for tok in match.group(1).split(",")
                if _VALID_WAIVER_ID.match(tok.strip())
            )
            if not ids:
                continue
            if stripped.startswith("#"):
                pending.append((lineno, ids))
            else:
                waivers.append(Waiver(line=lineno, ids=ids, covers=frozenset({lineno})))
            continue
        if pending and stripped and not stripped.startswith("#"):
            for comment_line, ids in pending:
                waivers.append(
                    Waiver(line=comment_line, ids=ids, covers=frozenset({comment_line, lineno}))
                )
            pending = []
    for comment_line, ids in pending:  # trailing comment with no code after it
        waivers.append(Waiver(line=comment_line, ids=ids, covers=frozenset({comment_line})))
    return tuple(waivers)


def _allow_map(waivers: Sequence[Waiver]) -> dict[int, frozenset[str]]:
    """Waived rule ids per line, derived from the waiver list."""
    allow: dict[int, frozenset[str]] = {}
    for waiver in waivers:
        for line in waiver.covers:
            allow[line] = allow.get(line, frozenset()) | waiver.ids
    return allow


def _module_from_source(source: str, rel: str, path: str) -> ModuleUnderLint:
    waivers = _scan_waivers(source)
    return ModuleUnderLint(
        path=path,
        rel=rel,
        source=source,
        tree=ast.parse(source, filename=path),
        allow=_allow_map(waivers),
        waivers=waivers,
    )


def parse_module(path: Path, rel: str | None = None) -> ModuleUnderLint:
    """Read and parse one file into a :class:`ModuleUnderLint`."""
    source = path.read_text(encoding="utf-8")
    return _module_from_source(
        source, rel if rel is not None else relative_module_path(path), str(path)
    )


@dataclass(frozen=True)
class LintReport:
    """Everything one lint run learned: live findings, waived ones, stale waivers.

    ``findings`` are the violations that survive waivers; ``suppressed``
    the ones a waiver absorbed (the evidence stale-waiver detection works
    from); ``stale_waivers`` one :data:`STALE_WAIVER_RULE` finding per
    ``allow[...]`` comment that suppressed nothing — relative to the rules
    that actually ran.
    """

    findings: tuple[Finding, ...] = ()
    suppressed: tuple[Finding, ...] = ()
    stale_waivers: tuple[Finding, ...] = ()


def _default_rules() -> Sequence["Rule"]:
    from repro.analysis.rules import all_rules

    return all_rules()


def _sorted(findings: Iterable[Finding]) -> tuple[Finding, ...]:
    return tuple(sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)))


def _collect(mods: Sequence[ModuleUnderLint], rules: Sequence["Rule"]) -> LintReport:
    from repro.analysis.rules._base import ProgramRule

    module_rules = [r for r in rules if not isinstance(r, ProgramRule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for mod in mods:
        for rule in module_rules:
            if not rule.applies(mod):
                continue
            for finding in rule.check(mod):
                if mod.allows(finding.line, rule.rule_id):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
    if program_rules:
        from repro.analysis.callgraph import build_project

        project = build_project(mods)
        by_path = {mod.path: mod for mod in mods}
        for rule in program_rules:
            for finding in rule.check_program(project):
                mod = by_path.get(finding.path)
                if mod is not None and mod.allows(finding.line, rule.rule_id):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
    stale: list[Finding] = []
    for mod in mods:
        for waiver in mod.waivers:
            if not any(f.path == mod.path and waiver.suppresses(f) for f in suppressed):
                ids = ",".join(sorted(waiver.ids))
                stale.append(
                    Finding(
                        rule=STALE_WAIVER_RULE,
                        path=mod.path,
                        line=waiver.line,
                        col=0,
                        message=f"stale waiver allow[{ids}]: it suppresses no finding "
                        "— remove it or restore the violation it justified",
                    )
                )
    return LintReport(
        findings=_sorted(findings),
        suppressed=_sorted(suppressed),
        stale_waivers=_sorted(stale),
    )


def lint_source(
    source: str,
    rel: str,
    path: str = "<string>",
    rules: Sequence["Rule"] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet as if it lived at ``rel`` (test entry point)."""
    mod = _module_from_source(source, rel, path)
    return list(_collect([mod], _default_rules() if rules is None else rules).findings)


def lint_file(path: Path, rules: Sequence["Rule"] | None = None) -> list[Finding]:
    """Lint one file."""
    return list(
        _collect([parse_module(path)], _default_rules() if rules is None else rules).findings
    )


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_collect(
    paths: Iterable[str | Path],
    rules: Sequence["Rule"] | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` into a full :class:`LintReport`.

    The whole-program rules see one :class:`~repro.analysis.callgraph.Project`
    spanning every collected file, so cross-module edges resolve exactly
    when the files are linted together (the gate always lints the whole
    ``src/repro`` tree).
    """
    resolved_rules = _default_rules() if rules is None else rules
    mods = [parse_module(file) for file in _iter_python_files(Path(p) for p in paths)]
    return _collect(mods, resolved_rules)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence["Rule"] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    return list(lint_collect(paths, rules).findings)
