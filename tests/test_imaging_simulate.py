"""Tests for the view simulator (the synthetic dataset generator)."""

import numpy as np
import pytest

from repro.ctf import CTFParams
from repro.geometry import Orientation
from repro.imaging import simulate_views
from repro.imaging.project import project_map


def test_simulate_views_shapes_and_truth(phantom16):
    views = simulate_views(phantom16, 5, seed=0)
    assert views.images.shape == (5, 16, 16)
    assert len(views.true_orientations) == 5
    assert len(views.initial_orientations) == 5
    assert views.ground_truth is phantom16
    assert len(views) == 5
    assert views.size == 16


def test_clean_views_match_direct_projection(phantom16):
    o = Orientation(40.0, 50.0, 60.0)
    views = simulate_views(phantom16, 1, orientations=[o], seed=0)
    direct = project_map(phantom16, o, method="real")
    assert np.allclose(views.images[0], direct, atol=1e-10)


def test_center_shift_is_recorded_and_applied(phantom16):
    views = simulate_views(phantom16, 4, center_sigma_px=2.0, seed=1)
    offsets = [(o.cx, o.cy) for o in views.true_orientations]
    assert any(abs(c[0]) > 0.1 or abs(c[1]) > 0.1 for c in offsets)
    # initial orientations start with zero center estimate
    assert all(o.cx == 0.0 and o.cy == 0.0 for o in views.initial_orientations)


def test_center_shift_moves_image_content(phantom16):
    o = Orientation(0.0, 0.0, 0.0)
    clean = simulate_views(phantom16, 1, orientations=[o], seed=3)
    shifted = simulate_views(phantom16, 1, orientations=[o], center_sigma_px=3.0, seed=3)
    t = shifted.true_orientations[0]
    from repro.imaging import shift_image

    undone = shift_image(shifted.images[0], -t.cx, -t.cy)
    # shifting wraps periodically and drops the asymmetric Nyquist term, so
    # agreement is near-exact in the interior, approximate at the border
    interior = (slice(3, -3), slice(3, -3))
    scale = np.abs(clean.images[0]).max()
    assert np.allclose(undone[interior], clean.images[0][interior], atol=5e-3 * scale)


def test_initial_orientation_perturbation(phantom16):
    views = simulate_views(phantom16, 10, initial_angle_error_deg=5.0, seed=2)
    from repro.refine.stats import angular_errors

    errs = angular_errors(views.initial_orientations, views.true_orientations)
    assert errs.mean() > 1.0
    clean = simulate_views(phantom16, 10, initial_angle_error_deg=0.0, seed=2)
    errs0 = angular_errors(clean.initial_orientations, clean.true_orientations)
    assert np.allclose(errs0, 0.0, atol=1e-4)


def test_ctf_single_params_shared(phantom16):
    p = CTFParams(defocus_angstrom=18000.0)
    views = simulate_views(phantom16, 3, ctf=p, seed=0)
    assert views.ctf_params == [p, p, p]


def test_ctf_list_length_checked(phantom16):
    with pytest.raises(ValueError):
        simulate_views(phantom16, 3, ctf=[CTFParams()], seed=0)


def test_snr_noise_applied(phantom16):
    clean = simulate_views(phantom16, 2, seed=7)
    noisy = simulate_views(phantom16, 2, snr=1.0, seed=7)
    assert not np.allclose(clean.images, noisy.images)


def test_subset(phantom16):
    views = simulate_views(phantom16, 6, seed=0, ctf=CTFParams())
    sub = views.subset([0, 2, 4])
    assert sub.images.shape[0] == 3
    assert sub.true_orientations[1].as_tuple() == views.true_orientations[2].as_tuple()
    assert len(sub.ctf_params) == 3


def test_simulation_deterministic(phantom16):
    a = simulate_views(phantom16, 3, snr=2.0, center_sigma_px=1.0, seed=11)
    b = simulate_views(phantom16, 3, snr=2.0, center_sigma_px=1.0, seed=11)
    assert np.array_equal(a.images, b.images)
