"""Synthetic virus phantoms (the stand-ins for Sindbis and reo datasets).

The paper's experiments use cryo-TEM data of two icosahedral viruses.  We
have no micrographs, so we synthesize ground-truth densities that exercise
the same code paths (DESIGN.md §2):

* :func:`icosahedral_capsid_phantom` — a spherical protein shell decorated
  with 60·n Gaussian "subunits" placed by the icosahedral group, i.e. a
  particle with exact I symmetry, like Sindbis/reo capsids.
* :func:`asymmetric_phantom` — a blob assembly with no symmetry, exercising
  the paper's headline claim (refinement without symmetry assumptions).
* :func:`cyclic_phantom` — C_n symmetric object for symmetry detection tests.
* :func:`sindbis_like_phantom` / :func:`reo_like_phantom` — named presets
  with shell radii proportioned like the two specimens (Sindbis ~700 Å
  diameter single shell + membrane; reovirus ~850 Å double shell).

All phantoms are smooth (Gaussian building blocks), so their projections are
band-limited and interpolation errors stay small at test sizes.
"""

from __future__ import annotations

import numpy as np

from repro.density.map import DensityMap
from repro.geometry.symmetry import SymmetryGroup, cyclic_group, icosahedral_group
from repro.utils import default_rng

__all__ = [
    "gaussian_blob",
    "spherical_shell",
    "place_blobs",
    "asymmetric_phantom",
    "cyclic_phantom",
    "icosahedral_capsid_phantom",
    "sindbis_like_phantom",
    "reo_like_phantom",
]


def _coord_grids(size: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    c = size // 2
    k = np.arange(size) - c
    return np.meshgrid(k, k, k, indexing="ij")  # z, y, x


def gaussian_blob(size: int, center_xyz: np.ndarray, sigma: float, amplitude: float = 1.0) -> np.ndarray:
    """A 3D Gaussian blob at ``center_xyz`` (voxels, relative to box center)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    z, y, x = _coord_grids(size)
    cx, cy, cz = np.asarray(center_xyz, dtype=float)
    r2 = (x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2
    return amplitude * np.exp(-r2 / (2.0 * sigma * sigma))


def spherical_shell(size: int, radius: float, thickness: float, amplitude: float = 1.0) -> np.ndarray:
    """A smooth spherical shell (Gaussian radial profile)."""
    if radius <= 0 or thickness <= 0:
        raise ValueError("radius and thickness must be positive")
    z, y, x = _coord_grids(size)
    r = np.sqrt(x * x + y * y + z * z)
    return amplitude * np.exp(-((r - radius) ** 2) / (2.0 * thickness * thickness))


def place_blobs(
    size: int,
    positions_xyz: np.ndarray,
    sigma: float,
    amplitudes: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Sum of Gaussian blobs at the given positions (voxel offsets from center)."""
    pos = np.atleast_2d(np.asarray(positions_xyz, dtype=float))
    amps = np.broadcast_to(np.asarray(amplitudes, dtype=float), (pos.shape[0],))
    out = np.zeros((size, size, size))
    for p, a in zip(pos, amps):
        out += gaussian_blob(size, p, sigma, a)
    return out


def asymmetric_phantom(
    size: int = 32,
    n_blobs: int = 12,
    seed: int | np.random.Generator | None = 0,
    apix: float = 1.0,
) -> DensityMap:
    """A particle with no symmetry: random blobs inside a soft envelope.

    Blob radii/amplitudes vary so that no rotation maps the object onto
    itself — the configuration the paper's method uniquely handles.
    """
    rng = default_rng(seed)
    max_r = size * 0.3
    positions = rng.uniform(-max_r, max_r, size=(n_blobs, 3))
    # keep inside a sphere so projections never clip the box
    norms = np.linalg.norm(positions, axis=1)
    positions = positions * (np.minimum(norms, max_r) / np.maximum(norms, 1e-9))[:, None]
    sigmas = rng.uniform(size * 0.04, size * 0.10, size=n_blobs)
    amps = rng.uniform(0.5, 1.5, size=n_blobs)
    data = np.zeros((size, size, size))
    for p, s, a in zip(positions, sigmas, amps):
        data += gaussian_blob(size, p, float(s), float(a))
    return DensityMap(data, apix)


def cyclic_phantom(
    size: int = 32,
    n: int = 4,
    seed: int | np.random.Generator | None = 0,
    apix: float = 1.0,
) -> DensityMap:
    """A C_n-symmetric particle: an asymmetric motif replicated about ẑ."""
    rng = default_rng(seed)
    group = cyclic_group(n)
    motif = rng.uniform(-size * 0.28, size * 0.28, size=(3, 3))
    sigmas = rng.uniform(size * 0.05, size * 0.09, size=3)
    data = np.zeros((size, size, size))
    for g in group.matrices:
        for p, s in zip(motif, sigmas):
            data += gaussian_blob(size, g @ p, float(s))
    return DensityMap(data, apix)


def symmetric_phantom(group: SymmetryGroup, size: int = 32, seed=0, apix: float = 1.0) -> DensityMap:
    """An arbitrary-group phantom: an asymmetric motif replicated by ``group``."""
    rng = default_rng(seed)
    motif = rng.uniform(-size * 0.25, size * 0.25, size=(2, 3))
    sigmas = rng.uniform(size * 0.05, size * 0.08, size=2)
    data = np.zeros((size, size, size))
    for g in group.matrices:
        for p, s in zip(motif, sigmas):
            data += gaussian_blob(size, g @ p, float(s))
    return DensityMap(data, apix)


def icosahedral_capsid_phantom(
    size: int = 32,
    shell_radius_frac: float = 0.30,
    subunits_per_asym: int = 1,
    subunit_sigma_frac: float = 0.05,
    seed: int | np.random.Generator | None = 0,
    apix: float = 1.0,
    with_shell: bool = True,
) -> DensityMap:
    """An icosahedrally symmetric capsid: shell + 60·n subunit blobs.

    ``subunits_per_asym`` asymmetric-unit blobs are replicated by all 60
    rotations of the icosahedral group, giving a particle with exact I
    symmetry whose projections carry high-frequency detail (the blobs) on
    top of the low-frequency shell — the regime where orientation errors
    visibly blur the reconstruction (Figures 2/3).
    """
    rng = default_rng(seed)
    group = icosahedral_group()
    radius = size * shell_radius_frac
    sigma = size * subunit_sigma_frac
    data = np.zeros((size, size, size))
    if with_shell:
        data += 0.5 * spherical_shell(size, radius, sigma)
    # random points near the shell surface, replicated over the group
    for _ in range(subunits_per_asym):
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        base = direction * radius
        for g in group.matrices:
            data += gaussian_blob(size, g @ base, sigma)
    return DensityMap(data, apix)


def sindbis_like_phantom(size: int = 32, seed: int | np.random.Generator | None = 7, apix: float = 1.0) -> DensityMap:
    """Sindbis-like preset: single glycoprotein shell + inner membrane shell.

    Sindbis virus is ~700 Å across with an outer glycoprotein layer and a
    lipid membrane below it; we keep two shells at radii 0.33·l and 0.24·l
    with 60 subunit decorations on the outer one.
    """
    inner = spherical_shell(size, size * 0.24, size * 0.04, amplitude=0.4)
    capsid = icosahedral_capsid_phantom(
        size, shell_radius_frac=0.33, subunits_per_asym=1, subunit_sigma_frac=0.045, seed=seed, apix=apix
    )
    return DensityMap(capsid.data + inner, apix)


def reo_like_phantom(size: int = 32, seed: int | np.random.Generator | None = 11, apix: float = 1.0) -> DensityMap:
    """Reovirus-like preset: double capsid shell, denser decoration.

    Mammalian orthoreovirus has concentric protein shells (~850 Å outer
    diameter); we use two decorated shells at 0.36·l and 0.26·l.
    """
    outer = icosahedral_capsid_phantom(
        size, shell_radius_frac=0.36, subunits_per_asym=1, subunit_sigma_frac=0.04, seed=seed, apix=apix
    )
    inner = icosahedral_capsid_phantom(
        size,
        shell_radius_frac=0.26,
        subunits_per_asym=1,
        subunit_sigma_frac=0.05,
        seed=default_rng(seed).integers(1 << 31),
        apix=apix,
        with_shell=True,
    )
    return DensityMap(outer.data + 0.7 * inner.data, apix)
