"""Rule base class and small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.analysis.lint import Finding, ModuleUnderLint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.callgraph import Project

__all__ = ["ProgramRule", "Rule", "attribute_chain", "walk_functions"]


class Rule:
    """One machine-checked invariant.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects (use :meth:`finding` to build them
    from an AST node).  ``include``/``exclude`` are package-relative path
    prefixes (``repro/align/``) or exact file paths matched against
    ``ModuleUnderLint.rel``.
    """

    rule_id: ClassVar[str] = "RL000"
    name: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    include: ClassVar[tuple[str, ...]] = ("repro/",)
    exclude: ClassVar[tuple[str, ...]] = ()

    def applies(self, mod: ModuleUnderLint) -> bool:
        rel = mod.rel
        if not any(rel == p or rel.startswith(p) for p in self.include):
            return False
        return not any(rel == p or rel.startswith(p) for p in self.exclude)

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, mod: ModuleUnderLint, node: ast.AST | int, message: str) -> Finding:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(rule=self.rule_id, path=mod.path, line=line, col=col, message=message)


class ProgramRule(Rule):
    """A whole-program invariant checked against the call graph.

    Unlike per-module rules, a ``ProgramRule`` sees the complete
    :class:`~repro.analysis.callgraph.Project` (symbol table + call
    graph) built over every linted file, so it can follow caller→callee
    edges, pool submissions, and class hierarchies across modules.
    Findings still carry a concrete file/line, so per-line waivers apply
    exactly as they do for per-module rules.  :meth:`check` is never
    invoked for these rules; the lint driver calls :meth:`check_program`
    once per run instead.
    """

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_program(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self, path: str, node: ast.AST | int, message: str
    ) -> Finding:
        """Build a finding at an AST node (or bare line) in ``path``."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(rule=self.rule_id, path=path, line=line, col=col, message=message)


def attribute_chain(node: ast.AST) -> list[str] | None:
    """``np.fft.fft2`` -> ``["np", "fft", "fft2"]``; None for non-name roots."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def walk_functions(tree: ast.Module) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield (qualname, def-node) for every function, including methods."""

    def visit(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")
