"""The fused in-band kernel must reproduce the reference path exactly.

Every test here compares ``kernel="fused"`` against ``kernel="reference"``
(or :class:`MatchPlan` band gathers against full-slice gathers).  The fused
kernel is constructed to follow the same floating-point expression order as
the reference, so the required rtol=1e-10 equivalences are in fact
bit-exact — asserted with ``==`` / ``array_equal`` where possible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.distance import DistanceComputer, radius_weights
from repro.align.fused import MatchPlan, get_match_plan
from repro.align.grid import orientation_window
from repro.align.matcher import match_view, match_view_band
from repro.ctf.model import CTFParams, ctf_2d
from repro.fourier.slicing import extract_slice, extract_slices
from repro.geometry.euler import Orientation
from repro.refine.center_refine import refine_center
from repro.refine.single import refine_view_at_level
from repro.refine.window import sliding_window_search

L = 16


@pytest.fixture(scope="module")
def volume_ft(phantom16):
    return phantom16.fourier_oversampled(2)


@pytest.fixture(scope="module")
def volume_ft_unpadded(phantom16):
    return phantom16.fourier_oversampled(1)


@pytest.fixture(scope="module")
def view_ft():
    r = np.random.default_rng(42)
    return r.normal(size=(L, L)) + 1j * r.normal(size=(L, L))


def _computers():
    return [
        DistanceComputer(L),
        DistanceComputer(L, r_max=4.0),
        DistanceComputer(L, r_max=6.0, weights=radius_weights(L, "radius", 6.0)),
        DistanceComputer(L, weights=radius_weights(L, "radius2"), normalized=True),
    ]


@pytest.mark.parametrize("interpolation", ["trilinear", "nearest"])
@pytest.mark.parametrize("dc_index", range(4))
def test_cut_bands_match_full_slices(volume_ft, dc_index, interpolation):
    """Fused band gather == full slice then mask, for every config."""
    dc = _computers()[dc_index]
    plan = MatchPlan(dc, volume_ft.shape[0], interpolation)
    grid = orientation_window(Orientation(40.0, 30.0, 70.0), 2.0, 2)
    rots = grid.rotation_stack()
    cuts = extract_slices(volume_ft, rots, order=interpolation, out_size=L)
    expected = cuts.reshape(cuts.shape[0], -1)[:, dc.band_indices]
    got = plan.cut_bands(volume_ft, rots)
    assert got.shape == (grid.size, dc.n_samples)
    assert np.array_equal(got, expected)

    one = plan.cut_band(volume_ft, rots[3])
    assert np.array_equal(one, expected[3])


@pytest.mark.parametrize("dc_index", range(4))
def test_match_view_band_equals_match_view(volume_ft, view_ft, dc_index):
    dc = _computers()[dc_index]
    plan = get_match_plan(dc, volume_ft.shape[0])
    grid = orientation_window(Orientation(25.0, 50.0, 10.0), 3.0, 2)
    ref = match_view(view_ft, volume_ft, grid, distance_computer=dc)
    fused = match_view_band(plan.gather_view(view_ft), volume_ft, grid, plan)
    assert fused.flat_index == ref.flat_index
    assert fused.distance == ref.distance
    assert fused.on_edge == ref.on_edge
    assert np.array_equal(fused.distances, ref.distances)


def test_match_with_ctf_modulation(volume_ft, view_ft):
    """|CTF| modulation applies identically on both kernels."""
    dc = DistanceComputer(L, r_max=6.0)
    mod = dc.gather_modulation(np.abs(ctf_2d(CTFParams(), L, 2.8)))
    plan = get_match_plan(dc, volume_ft.shape[0])
    grid = orientation_window(Orientation(25.0, 50.0, 10.0), 3.0, 1)
    ref = match_view(view_ft, volume_ft, grid, distance_computer=dc, cut_modulation=mod)
    fused = match_view_band(
        plan.gather_view(view_ft), volume_ft, grid, plan, cut_modulation=mod
    )
    assert fused.distance == ref.distance
    assert np.array_equal(fused.distances, ref.distances)


def test_unpadded_volume_uses_masked_path(volume_ft_unpadded, view_ft):
    """At pad_factor=1 the full band touches the boundary: masked gather kicks in."""
    dc = DistanceComputer(L)
    plan = MatchPlan(dc, volume_ft_unpadded.shape[0])
    assert not plan.all_interior
    grid = orientation_window(Orientation(65.0, 20.0, 110.0), 4.0, 1)
    ref = match_view(view_ft, volume_ft_unpadded, grid, distance_computer=dc)
    fused = match_view_band(plan.gather_view(view_ft), volume_ft_unpadded, grid, plan)
    assert np.array_equal(fused.distances, ref.distances)


def test_oversampled_volume_is_interior(volume_ft):
    """A restricted band in an oversampled volume never needs bounds checks.

    (The *full* band reaches exactly the volume face at pad_factor=2 —
    ``2·(l/2) == c_v`` — so it stays on the masked path.)
    """
    plan = MatchPlan(DistanceComputer(L, r_max=6.0), volume_ft.shape[0])
    assert plan.all_interior
    assert not MatchPlan(DistanceComputer(L), volume_ft.shape[0]).all_interior


def test_refine_center_fused_equals_reference(volume_ft, view_ft):
    dc = DistanceComputer(L, r_max=6.0, weights=radius_weights(L, "radius", 6.0))
    cut = extract_slice(volume_ft, Orientation(33.0, 44.0, 55.0).matrix(), out_size=L)
    kwargs = dict(center=(0.4, -0.2), step_px=0.25, half_steps=1, max_slides=8)
    ref = refine_center(view_ft, cut, distance_computer=dc, kernel="reference", **kwargs)
    fused = refine_center(view_ft, cut, distance_computer=dc, kernel="fused", **kwargs)
    assert (fused.cx, fused.cy) == (ref.cx, ref.cy)
    assert fused.distance == ref.distance
    assert fused.n_evaluations == ref.n_evaluations
    assert fused.slid == ref.slid


def test_sliding_window_fused_equals_reference(volume_ft, view_ft):
    """Equivalence must hold through window slides (edge winners re-center)."""
    dc = DistanceComputer(L)
    kwargs = dict(step_deg=5.0, half_steps=1, max_slides=8, distance_computer=dc)
    start = Orientation(10.0, 80.0, 200.0)
    ref = sliding_window_search(view_ft, volume_ft, start, kernel="reference", **kwargs)
    fused = sliding_window_search(view_ft, volume_ft, start, kernel="fused", **kwargs)
    assert fused.orientation.as_tuple() == ref.orientation.as_tuple()
    assert fused.distance == ref.distance
    assert fused.n_windows == ref.n_windows
    assert fused.n_matches == ref.n_matches
    assert fused.slid == ref.slid


@pytest.mark.parametrize("interpolation", ["trilinear", "nearest"])
def test_refine_view_at_level_fused_equals_reference(volume_ft, view_ft, interpolation):
    """Full per-view level refinement: same orientation, center and distance."""
    dc = DistanceComputer(L, r_max=6.0)
    kwargs = dict(
        angular_step_deg=4.0,
        center_step_px=0.5,
        half_steps=2,
        center_half_steps=1,
        distance_computer=dc,
        interpolation=interpolation,
    )
    start = Orientation(50.0, 30.0, 120.0, cx=0.3, cy=-0.4)
    ref = refine_view_at_level(view_ft, volume_ft, start, kernel="reference", **kwargs)
    fused = refine_view_at_level(view_ft, volume_ft, start, kernel="fused", **kwargs)
    assert fused.orientation.as_tuple() == ref.orientation.as_tuple()
    assert fused.distance == ref.distance
    assert fused.n_matches == ref.n_matches
    assert fused.n_center_evals == ref.n_center_evals


def test_phase_shift_band_matches_full_shift(view_ft):
    from repro.imaging.center import phase_shift_ft

    dc = DistanceComputer(L)
    plan = MatchPlan(dc, 2 * L)
    band = plan.gather_view(view_ft)
    shifted = plan.phase_shift_band(band, -0.7, 0.3)
    expected = dc.gather(phase_shift_ft(view_ft, -0.7, 0.3))
    assert np.array_equal(shifted, expected)
    assert plan.phase_shift_band(band, 0.0, 0.0) is band


def test_distance_band_matches_distance(view_ft):
    """The band-vector entry point reproduces the full-array distances."""
    dc = DistanceComputer(L, r_max=5.0, weights=radius_weights(L, "radius", 5.0))
    r = np.random.default_rng(1)
    cut = r.normal(size=(L, L)) + 1j * r.normal(size=(L, L))
    d_full = dc.distance(view_ft, cut)
    d_band = dc.distance_band(dc.gather(view_ft), dc.gather(cut))
    assert d_band == d_full

    cuts = r.normal(size=(5, L, L)) + 1j * r.normal(size=(5, L, L))
    got = dc.distance_band(dc.gather(view_ft), cuts.reshape(5, -1)[:, dc.band_indices])
    assert np.array_equal(got, dc.distance_batch(view_ft, cuts))


def test_distance_band_rejects_wrong_length():
    dc = DistanceComputer(L, r_max=4.0)
    with pytest.raises(ValueError):
        dc.distance_band(np.zeros(3), np.zeros(3))


def test_plan_cache_reuses_instances():
    dc = DistanceComputer(L)
    a = get_match_plan(dc, 32)
    b = get_match_plan(dc, 32)
    c = get_match_plan(dc, 32, "nearest")
    d = get_match_plan(dc, 48)
    assert a is b
    assert c is not a and d is not a
    assert get_match_plan(DistanceComputer(L), 32) is not a


def test_plan_validates_inputs():
    dc = DistanceComputer(L)
    with pytest.raises(ValueError):
        MatchPlan(dc, 32, interpolation="cubic")
    with pytest.raises(ValueError):
        MatchPlan(dc, L - 2)
    plan = MatchPlan(dc, 32)
    with pytest.raises(ValueError):
        plan.cut_band(np.zeros((L, L, L)), np.eye(3))
    with pytest.raises(ValueError):
        plan.cut_bands(np.zeros((32, 32, 32)), np.eye(4))


# -- the batched whole-window engine -----------------------------------------
@pytest.mark.parametrize("interpolation", ["trilinear", "nearest"])
@pytest.mark.parametrize("dc_index", range(4))
def test_cut_bands_batched_equals_cut_bands(volume_ft, dc_index, interpolation):
    """The stacked interior/edge gather == the per-candidate fused gather."""
    dc = _computers()[dc_index]
    plan = MatchPlan(dc, volume_ft.shape[0], interpolation)
    grid = orientation_window(Orientation(40.0, 30.0, 70.0), 2.0, 2)
    rots = grid.rotation_stack()
    assert np.array_equal(plan.cut_bands_batched(volume_ft, rots), plan.cut_bands(volume_ft, rots))
    # single-rotation input squeezes exactly like cut_bands
    assert np.array_equal(
        plan.cut_bands_batched(volume_ft, rots[3]), plan.cut_band(volume_ft, rots[3])
    )


@pytest.mark.parametrize("dc_index", range(4))
def test_match_window_equals_distances(volume_ft, view_ft, dc_index):
    dc = _computers()[dc_index]
    plan = get_match_plan(dc, volume_ft.shape[0])
    band = plan.gather_view(view_ft)
    rots = orientation_window(Orientation(25.0, 50.0, 10.0), 3.0, 2).rotation_stack()
    assert np.array_equal(
        plan.match_window(volume_ft, band, rots), plan.distances(volume_ft, band, rots)
    )
    # a single (3, 3) rotation keeps the (1,) shape, matching distances()
    one = plan.match_window(volume_ft, band, rots[5])
    assert one.shape == (1,)
    assert np.array_equal(one, plan.distances(volume_ft, band, rots[5]))


def test_match_window_with_ctf_modulation(volume_ft, view_ft):
    dc = DistanceComputer(L)
    plan = get_match_plan(dc, volume_ft.shape[0])
    band = plan.gather_view(view_ft)
    modulation = dc.gather_modulation(
        np.abs(ctf_2d(CTFParams(), L, apix=2.0))
    )
    rots = orientation_window(Orientation(12.0, 60.0, 300.0), 2.0, 1).rotation_stack()
    assert np.array_equal(
        plan.match_window(volume_ft, band, rots, cut_modulation=modulation),
        plan.distances(volume_ft, band, rots, cut_modulation=modulation),
    )


def test_sample_partition_covers_band(volume_ft):
    dc = DistanceComputer(L)
    plan = MatchPlan(dc, volume_ft.shape[0])
    assert plan.n_interior_samples + plan.n_edge_samples == dc.n_samples


def test_gather_chunk_env_override(volume_ft, view_ft, monkeypatch):
    from repro.align.fused import REPRO_GATHER_CHUNK, _gather_chunk_target

    dc = DistanceComputer(L)
    plan = get_match_plan(dc, volume_ft.shape[0])
    band = plan.gather_view(view_ft)
    rots = orientation_window(Orientation(25.0, 50.0, 10.0), 3.0, 2).rotation_stack()
    baseline = plan.match_window(volume_ft, band, rots)
    monkeypatch.setenv(REPRO_GATHER_CHUNK, "1")
    assert _gather_chunk_target(1 << 16) == 1
    assert plan._rotation_chunk(1 << 16) == 1
    # chunking is a pure batching decision: any chunk size, same bits
    assert np.array_equal(plan.match_window(volume_ft, band, rots), baseline)


@pytest.mark.parametrize("bad", ["0", "-5", "many", "4.5", ""])
def test_gather_chunk_env_validation(monkeypatch, bad):
    from repro.align.fused import REPRO_GATHER_CHUNK, _gather_chunk_target

    monkeypatch.setenv(REPRO_GATHER_CHUNK, bad)
    with pytest.raises(ValueError, match="REPRO_GATHER_CHUNK"):
        _gather_chunk_target(1 << 16)


def test_sliding_window_batched_equals_fused(volume_ft, view_ft):
    from repro.align.memo import OrientationMemo
    from repro.perf import PerfCounters

    dc = DistanceComputer(L)
    kwargs = dict(step_deg=5.0, half_steps=1, max_slides=8, distance_computer=dc)
    start = Orientation(10.0, 80.0, 200.0)
    fused = sliding_window_search(view_ft, volume_ft, start, kernel="fused", **kwargs)
    memo = OrientationMemo()
    counters = PerfCounters()
    batched = sliding_window_search(
        view_ft, volume_ft, start, kernel="batched", memo=memo, counters=counters, **kwargs
    )
    assert batched.orientation.as_tuple() == fused.orientation.as_tuple()
    assert batched.distance == fused.distance
    assert batched.n_windows == fused.n_windows
    assert batched.n_matches == fused.n_matches
    assert batched.centers == fused.centers
    assert counters.window_calls == batched.n_windows
    assert len(memo) > 0
    # second scan from the same start: every candidate comes from the memo
    counters2 = PerfCounters()
    again = sliding_window_search(
        view_ft, volume_ft, start, kernel="batched", memo=memo, counters=counters2, **kwargs
    )
    assert again == batched
    assert counters2.gathers == 0
    assert counters2.memo_hits == counters2.memo_lookups > 0
