"""Known-bad fixture: unsafe worker path (RL013).

Two violations: the pool task mutates a module-global cache (per-process
state diverges silently), and a nested function is submitted as a pool
task (it cannot pickle across the process boundary).
"""

from __future__ import annotations

__all__ = ["run_chunks", "worker_chunk"]

_RESULTS_CACHE: dict[int, float] = {}


def worker_chunk(payload):
    _RESULTS_CACHE[payload["chunk_id"]] = float(payload["value"])
    return payload["value"]


def run_chunks(executor, payloads):
    def local_task(payload):
        return payload["value"]

    futures = [executor.submit(worker_chunk, p) for p in payloads]
    futures.append(executor.submit(local_task, payloads[0]))
    return futures
