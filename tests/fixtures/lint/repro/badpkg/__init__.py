"""RL004 fixture: __all__ drifted from the real re-exports."""

from repro.utils import require_square

__all__ = ["require_square", "phantom_name"]
