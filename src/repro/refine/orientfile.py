"""Orientation files (steps c and o): the plain-text exchange format.

One line per view::

    <id> <theta> <phi> <omega> <cx> <cy> [<score>]

Angles in degrees, centers in pixels, optional match score.  Comment lines
start with ``#``.  This mirrors the role of the parameter files the
production programs read in step (c) and write in step (o); the master node
of the parallel driver uses exactly these functions.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation

__all__ = ["write_orientation_file", "read_orientation_file"]


def write_orientation_file(
    path: str,
    orientations: list[Orientation],
    scores: Array | list[float] | None = None,
    header: str | None = None,
    *,
    full_precision: bool = False,
    atomic: bool = False,
) -> None:
    """Write the refined orientation set O^refined (step o).

    ``full_precision`` serializes every field at 17 significant digits —
    an exact float64 round-trip, required by the checkpoint layer (a
    resumed run must be bit-identical to an uninterrupted one).  The
    default keeps the historical fixed 6-decimal layout the production
    parameter files used.

    ``atomic`` writes to a temp file in the target directory and renames
    it into place, so a run killed mid-write never leaves a torn file.
    """
    if scores is not None and len(scores) != len(orientations):
        raise ValueError("scores length must match orientations")

    def fmt(v: float) -> str:
        return f"{v:.17g}" if full_precision else f"{v:.6f}"

    target = path
    if atomic:
        directory = os.path.dirname(os.path.abspath(path))
        fd, target = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
        )
        os.close(fd)
    try:
        with open(target, "w") as fh:
            fh.write("# id theta phi omega cx cy score\n")
            if header:
                for line in header.splitlines():
                    fh.write(f"# {line}\n")
            for i, o in enumerate(orientations):
                s = float(scores[i]) if scores is not None else 0.0
                score = f"{s:.17g}" if full_precision else f"{s:.8g}"
                fh.write(
                    f"{i} {fmt(o.theta)} {fmt(o.phi)} {fmt(o.omega)} "
                    f"{fmt(o.cx)} {fmt(o.cy)} {score}\n"
                )
        if atomic:
            os.replace(target, path)
    except BaseException:
        if atomic:
            try:
                os.unlink(target)
            except FileNotFoundError:
                pass
        raise


def read_orientation_file(path: str) -> tuple[list[Orientation], Array]:
    """Read an orientation file (step c); returns ``(orientations, scores)``.

    Rows must appear in id order starting at 0 (the format is positional,
    like the production parameter files).
    """
    orientations: list[Orientation] = []
    scores: list[float] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) not in (6, 7):
                raise ValueError(f"{path}:{lineno}: expected 6 or 7 fields, got {len(parts)}")
            idx = int(parts[0])
            if idx != len(orientations):
                raise ValueError(f"{path}:{lineno}: ids must be consecutive from 0 (got {idx})")
            theta, phi, omega, cx, cy = (float(v) for v in parts[1:6])
            orientations.append(Orientation(theta, phi, omega, cx, cy))
            scores.append(float(parts[6]) if len(parts) == 7 else 0.0)
    return orientations, np.asarray(scores)
