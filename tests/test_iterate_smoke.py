"""iterate-smoke: the outer loop end to end in seconds (DESIGN.md §14).

A tiny l = 16 two-iteration structure-determination loop, run three ways
— streaming, barriered, and checkpointed-then-resumed — all of which must
produce the same history bit for bit.  Marked ``iterate_smoke`` so
``tools/check.py`` runs it as its own named quality-gate step; it also
runs in tier-1 (the marker is additive, not excluded by default).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.density import asymmetric_phantom
from repro.engine.config import (
    CheckpointConfig,
    EngineConfig,
    IterationConfig,
    ScheduleConfig,
)
from repro.imaging.simulate import simulate_views
from repro.reconstruct import determine_structure
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel

pytestmark = pytest.mark.iterate_smoke


def _config(streaming=True, path=None, resume=False):
    sched = MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=2),))
    return EngineConfig(
        schedule=ScheduleConfig.from_schedule(sched),
        r_max=6.0,
        iteration=IterationConfig(max_iterations=2, streaming=streaming),
        checkpoint=CheckpointConfig(path=path, resume=resume),
    )


def _identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert [o.as_tuple() for o in x.orientations] == [
            o.as_tuple() for o in y.orientations
        ]
        assert np.array_equal(x.density.data, y.density.data)
        assert x.resolution_angstrom == y.resolution_angstrom


def test_two_iteration_loop_with_resume(tmp_path):
    density = asymmetric_phantom(16, seed=7).normalized()
    views = simulate_views(
        density, 6, snr=10.0, initial_angle_error_deg=2.0, seed=7
    )

    streamed = determine_structure(views, density, _config(streaming=True))
    assert len(streamed.history) >= 1
    assert streamed.stop_reason in ("converged", "max_iterations")

    barriered = determine_structure(views, density, _config(streaming=False))
    _identical(streamed.history, barriered.history)

    ckpt = str(tmp_path / "loop")
    first = determine_structure(
        views, density, _config(streaming=True, path=ckpt, resume=True)
    )
    _identical(streamed.history, first.history)
    resumed = determine_structure(
        views, density, _config(streaming=True, path=ckpt, resume=True)
    )
    assert resumed.resumed_iterations == len(first.history)
    _identical(first.history, resumed.history)
