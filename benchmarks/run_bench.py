"""Kernel benchmark driver: fused vs reference, batched vs fused, pool scaling.

Measures the performance claims of the kernel work:

* the fused in-band slice/distance kernel vs the reference
  slice-then-distance path, on the full multi-resolution schedule at the
  paper-scale view size (l = 64, oversampled D̂),
* the batched whole-window engine (with the orientation memo) vs the
  per-candidate fused kernel on the same full schedule, including the
  measured memo hit-rate,
* the pruned best-first search (exact, bit-identical) and the pruned
  search + continuous polish (toleranced, objective-dominating) vs the
  exhaustive batched engine, with candidates-evaluated counts, and
* the process-parallel view scheduler at 1 vs N workers (recorded, not
  asserted — wall-clock scaling depends on the host's core count; on a
  single-CPU host the measurement is skipped and recorded as such).

Every measurement doubles as an equivalence check: the benchmark fails if
the compared paths disagree on any orientation or distance bit.

Run standalone to (re)generate ``BENCH_kernels.json`` at the repo root::

    PYTHONPATH=src python benchmarks/run_bench.py

or through the pytest harness (same numbers, plus artifact capture)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_fused_kernel.py -s
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # standalone: make src/ importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

BENCH_FILE = REPO_ROOT / "BENCH_kernels.json"


def _make_problem(size: int, n_views: int, seed: int = 0):
    from repro.density import asymmetric_phantom
    from repro.imaging.simulate import simulate_views

    density = asymmetric_phantom(size, seed=seed).normalized()
    views = simulate_views(
        density, n_views, initial_angle_error_deg=2.0, center_sigma_px=0.5, seed=seed
    )
    return density, views


def measure_fused_vs_reference(
    size: int = 64,
    n_views: int = 2,
    r_max: float | None = None,
    seed: int = 0,
) -> dict:
    """One full multi-resolution refinement per kernel; returns the timings.

    The two kernels must return bit-identical orientations and distances —
    a mismatch raises instead of reporting a meaningless speedup.
    """
    from repro.refine.refiner import OrientationRefiner

    density, views = _make_problem(size, n_views, seed)
    results = {}
    timings = {}
    for kernel in ("reference", "fused"):
        refiner = OrientationRefiner(density, r_max=r_max, kernel=kernel)
        refiner.volume_ft()  # step a excluded: both kernels share it unchanged
        t0 = time.perf_counter()
        results[kernel] = refiner.refine(views)
        timings[kernel] = time.perf_counter() - t0
    ref, fus = results["reference"], results["fused"]
    if [o.as_tuple() for o in ref.orientations] != [o.as_tuple() for o in fus.orientations]:
        raise AssertionError("fused kernel diverged from reference orientations")
    if not np.array_equal(ref.distances, fus.distances):
        raise AssertionError("fused kernel diverged from reference distances")
    return {
        "size": size,
        "n_views": n_views,
        "r_max": size // 2 if r_max is None else r_max,
        "schedule": "default (1.0, 0.1, 0.01, 0.002 deg)",
        "n_matches": ref.stats.total_matches,
        "reference_seconds": round(timings["reference"], 3),
        "fused_seconds": round(timings["fused"], 3),
        "speedup": round(timings["reference"] / timings["fused"], 2),
        "identical_results": True,
    }


def measure_batched_vs_fused(
    size: int = 64,
    n_views: int = 2,
    r_max: float | None = None,
    seed: int = 0,
) -> dict:
    """Whole-window batched engine (memo on) vs the per-candidate fused path.

    One full multi-resolution refinement per kernel; the views carry center
    jitter so the sliding window re-centers and the orientation memo gets
    genuine cross-recenter/cross-level hits.  Bit-identical results are a
    hard requirement — a mismatch raises instead of reporting a speedup.
    """
    from repro.refine.refiner import OrientationRefiner

    density, views = _make_problem(size, n_views, seed)
    results = {}
    timings = {}
    for kernel in ("fused", "batched"):
        refiner = OrientationRefiner(density, r_max=r_max, kernel=kernel)
        refiner.volume_ft()  # step a excluded: both kernels share it unchanged
        t0 = time.perf_counter()
        results[kernel] = refiner.refine(views)
        timings[kernel] = time.perf_counter() - t0
    fus, bat = results["fused"], results["batched"]
    if [o.as_tuple() for o in fus.orientations] != [o.as_tuple() for o in bat.orientations]:
        raise AssertionError("batched kernel diverged from fused orientations")
    if not np.array_equal(fus.distances, bat.distances):
        raise AssertionError("batched kernel diverged from fused distances")
    perf = bat.perf
    assert perf is not None
    return {
        "size": size,
        "n_views": n_views,
        "r_max": size // 2 if r_max is None else r_max,
        "schedule": "default (1.0, 0.1, 0.01, 0.002 deg)",
        "n_matches": bat.stats.total_matches,
        "fused_seconds": round(timings["fused"], 3),
        "batched_seconds": round(timings["batched"], 3),
        "speedup": round(timings["fused"] / timings["batched"], 2),
        "memo_hit_rate": round(perf.memo_hit_rate(), 4),
        "candidates_per_second": round(perf.candidates_per_second(), 1),
        "identical_results": True,
    }


def measure_pruned_vs_batched(
    size: int = 64,
    n_views: int = 2,
    r_max: float | None = None,
    seed: int = 0,
) -> dict:
    """Pruned search + continuous polish vs the exhaustive batched engine.

    Three runs on the full default schedule:

    1. the batched engine (the previous best) — the baseline,
    2. pruning alone (``top_k=None``) — must be *bit-identical* to the
       baseline (the early-termination bound is exact; a mismatch raises),
    3. pruning + polish — the fine 0.01°/0.002° levels replaced by the
       damped Gauss–Newton descent; gated by objective non-regression
       (every polished distance ≤ the baseline's) rather than bit
       identity, with the angular deviation recorded.

    ``candidates_evaluated`` counts candidates scored to a *full* §3
    distance (the perf counters' ``evaluated``); abandoned candidates pay
    only their first shell groups.
    """
    from repro.engine.config import EngineConfig
    from repro.refine.refiner import OrientationRefiner

    density, views = _make_problem(size, n_views, seed)

    def run(config_patch: dict | None):
        refiner = OrientationRefiner(density, r_max=r_max)
        if config_patch is not None:
            config = EngineConfig.from_dict({**refiner.config.to_dict(), **config_patch})
            refiner = OrientationRefiner(density, r_max=r_max, config=config)
        refiner.volume_ft()  # step a excluded: all three runs share it unchanged
        t0 = time.perf_counter()
        result = refiner.refine(views)
        return result, time.perf_counter() - t0

    base, base_dt = run(None)
    assert base.perf is not None
    base_evaluated = base.perf.evaluated

    pruned, pruned_dt = run({"prune": {"enabled": True}})
    assert pruned.perf is not None
    if [o.as_tuple() for o in pruned.orientations] != [
        o.as_tuple() for o in base.orientations
    ]:
        raise AssertionError("pruned search diverged from batched orientations")
    if not np.array_equal(pruned.distances, base.distances):
        raise AssertionError("pruned search diverged from batched distances")

    polish, polish_dt = run(
        {"prune": {"enabled": True}, "polish": {"enabled": True}}
    )
    assert polish.perf is not None
    if np.any(np.asarray(polish.distances) > np.asarray(base.distances) * (1 + 1e-12)):
        raise AssertionError(
            "polish regressed the objective vs the brute-force fine tail"
        )
    angle_err = max(
        abs(float(g) - float(w))
        for got, want in zip(polish.orientations, base.orientations)
        for g, w in zip(got.as_tuple()[:3], want.as_tuple()[:3])
    )
    return {
        "size": size,
        "n_views": n_views,
        "r_max": size // 2 if r_max is None else r_max,
        "schedule": "default (1.0, 0.1, 0.01, 0.002 deg)",
        "batched_seconds": round(base_dt, 3),
        "batched_candidates_evaluated": base_evaluated,
        "pruned_identity": {
            "seconds": round(pruned_dt, 3),
            "candidates_evaluated": pruned.perf.evaluated,
            "candidates_pruned": pruned.perf.pruned,
            "eval_reduction": round(base_evaluated / pruned.perf.evaluated, 2),
            "identical_results": True,
        },
        "pruned_polish": {
            "seconds": round(polish_dt, 3),
            "speedup": round(base_dt / polish_dt, 2),
            "candidates_evaluated": polish.perf.evaluated,
            "eval_reduction": round(base_evaluated / polish.perf.evaluated, 2),
            "polish_views": polish.perf.polish_calls,
            "polish_iters": polish.perf.polish_iters,
            "max_angular_deviation_deg": round(angle_err, 6),
            "replaced_tail_step_deg": 0.002,
            "distances_dominate_batched": True,
        },
    }


def measure_symmetric_vs_full(
    size: int = 64,
    res_deg: float = 6.0,
    omega_step_deg: float = 30.0,
    seed: int = 0,
) -> dict:
    """Asymmetric-unit-restricted global search vs the full-sphere scan.

    An icosahedral (|G| = 60) phantom at the paper-scale view size: the
    restricted search scores the sin(θ)-corrected global grid cut to one
    asymmetric unit; the full search scores that grid's complete orbit
    expansion ``{g·r}`` — exactly |G|× the candidate evaluations, through
    the identical batched kernel.  The view is generated at a restricted
    grid orientation, so both searches have an unambiguous minimum; the
    full scan's argmin must equal the restricted argmin *modulo the
    group* (the §13 contract — bit-identity cannot hold because
    G-equivalent candidates gather different lattice neighborhoods).
    """
    from repro.align.distance import DistanceComputer
    from repro.align.fused import get_match_plan
    from repro.fourier.slicing import extract_slice
    from repro.geometry.euler import Orientation, euler_to_matrix
    from repro.geometry.symmetry import icosahedral_group
    from repro.pipeline.datasets import phantom_for
    from repro.refine.restrict import SymmetryRestriction
    from repro.refine.stats import angular_errors

    group = icosahedral_group()
    restriction = SymmetryRestriction.from_group(group)
    density = phantom_for("sindbis", size, seed=seed)
    volume_ft = density.fourier_oversampled(2)

    views_au = restriction.restricted_views(res_deg)
    omegas = np.arange(0.0, 360.0, omega_step_deg)
    thetas = np.repeat([v[0] for v in views_au], len(omegas))
    phis = np.repeat([v[1] for v in views_au], len(omegas))
    oms = np.tile(omegas, len(views_au))
    rots_au = euler_to_matrix(thetas, phis, oms)
    rots_full = np.einsum(
        "gij,wjk->gwik", np.asarray(group.matrices), rots_au
    ).reshape(-1, 3, 3)

    # the probe view: a central cut at one restricted grid orientation
    truth_idx = len(rots_au) // 3
    view_ft = extract_slice(volume_ft, rots_au[truth_idx], out_size=size)
    dc = DistanceComputer(size)
    plan = get_match_plan(dc, volume_ft.shape[0], "trilinear")
    view_band = plan.gather_view(view_ft)

    t0 = time.perf_counter()
    d_au = np.asarray(plan.match_window(volume_ft, view_band, rots_au))
    restricted_dt = time.perf_counter() - t0
    t0 = time.perf_counter()
    d_full = np.asarray(plan.match_window(volume_ft, view_band, rots_full))
    full_dt = time.perf_counter() - t0

    o_au = Orientation.from_matrix(rots_au[int(np.argmin(d_au))])
    o_full = Orientation.from_matrix(rots_full[int(np.argmin(d_full))])
    argmin_err = float(angular_errors([o_full], [o_au], symmetry=group)[0])
    if argmin_err > 1e-6:
        raise AssertionError(
            "restricted argmin differs from the exhaustive argmin modulo "
            f"the group by {argmin_err:.3g} deg"
        )
    eval_reduction = len(rots_full) / len(rots_au)
    if eval_reduction < 10.0:
        raise AssertionError(
            f"candidate-evaluation reduction {eval_reduction:.1f}x below the 10x bar"
        )
    return {
        "size": size,
        "group": group.name,
        "group_order": group.order,
        "resolution_deg": res_deg,
        "omega_step_deg": omega_step_deg,
        "restricted_candidates": len(rots_au),
        "full_candidates": len(rots_full),
        "candidate_eval_reduction": round(eval_reduction, 2),
        "grid_reduction_factor": round(restriction.reduction_factor(res_deg), 2),
        "restricted_seconds": round(restricted_dt, 3),
        "full_seconds": round(full_dt, 3),
        "speedup": round(full_dt / restricted_dt, 2),
        "argmin_error_mod_group_deg": argmin_err,
        "argmin_equal_mod_group": True,
    }


def measure_worker_scaling(
    size: int = 32,
    n_views: int = 8,
    worker_counts: tuple[int, ...] = (1, 2),
    seed: int = 0,
) -> dict:
    """Wall time of the refinement at each worker count.

    Results must be bit-identical at every count.  The speedup column is
    recorded as measured; on a host with a single CPU a multi-worker
    measurement is meaningless (the pool can only add overhead), so the
    run is skipped and recorded as a structured
    ``{"status": "skipped", "reason": "insufficient cpus"}`` record that
    downstream tooling can branch on without string-parsing.
    """
    from repro.refine.refiner import OrientationRefiner

    host_cpus = os.cpu_count() or 1
    if host_cpus < 2 and any(n > 1 for n in worker_counts):
        return {
            "status": "skipped",
            "reason": "insufficient cpus",
            "size": size,
            "n_views": n_views,
            "host_cpus": host_cpus,
        }
    density, views = _make_problem(size, n_views, seed)
    baseline = None
    rows = []
    for n in worker_counts:
        refiner = OrientationRefiner(density, n_workers=n)
        refiner.volume_ft()
        t0 = time.perf_counter()
        result = refiner.refine(views)
        dt = time.perf_counter() - t0
        if baseline is None:
            baseline = result
            base_dt = dt
        else:
            if [o.as_tuple() for o in result.orientations] != [
                o.as_tuple() for o in baseline.orientations
            ]:
                raise AssertionError(f"n_workers={n} diverged from serial orientations")
            if not np.array_equal(result.distances, baseline.distances):
                raise AssertionError(f"n_workers={n} diverged from serial distances")
        rows.append(
            {
                "n_workers": n,
                "seconds": round(dt, 3),
                "speedup_vs_serial": round(base_dt / dt, 2),
            }
        )
    return {
        "status": "ok",
        "size": size,
        "n_views": n_views,
        "host_cpus": os.cpu_count(),
        "identical_results": True,
        "rows": rows,
    }


def engine_fingerprint() -> str:
    """Fingerprint of the engine config the benchmarks run under.

    All measurements use the engine defaults; the kernel selector and
    worker count are the independent variables being compared, and every
    compared pair is asserted bit-identical, so the default-config
    fingerprint identifies the numerical configuration of the whole file.
    """
    from repro.engine.config import EngineConfig

    return EngineConfig().fingerprint()


def run_all() -> dict:
    return {
        "engine_fingerprint": engine_fingerprint(),
        "fused_vs_reference": measure_fused_vs_reference(),
        "batched_vs_fused": measure_batched_vs_fused(),
        "pruned_vs_batched": measure_pruned_vs_batched(),
        "symmetric_vs_full": measure_symmetric_vs_full(),
        "worker_scaling": measure_worker_scaling(),
    }


def main() -> None:
    data = run_all()
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")
    print(json.dumps(data, indent=2))
    print(f"\nwrote {BENCH_FILE}")


if __name__ == "__main__":
    main()
