"""Micrograph synthesis and particle picking (Step A of the pipeline).

The paper's Step A extracts individual particle projections from whole
micrographs and identifies the center of each projection (their reference
[22] describes the production identifier).  We reproduce the substrate:
:func:`synthesize_micrograph` scatters projections of a map over a large
noisy field; :func:`pick_particles` locates them by normalized
cross-correlation against a rotationally-symmetric disk template (particles
in unknown orientations still correlate with their common low-frequency
disk); :func:`extract_particles` boxes them out with estimated centers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.density.map import DensityMap
from repro.geometry.euler import Orientation, random_orientations
from repro.imaging.project import project_map
from repro.utils import default_rng

__all__ = ["Micrograph", "synthesize_micrograph", "pick_particles", "extract_particles"]


@dataclass
class Micrograph:
    """A synthetic micrograph with its ground-truth particle bookkeeping."""

    image: np.ndarray
    true_positions: list[tuple[int, int]]  # (row, col) of each particle center
    true_orientations: list[Orientation]
    box_size: int


def synthesize_micrograph(
    density: DensityMap,
    shape: tuple[int, int] = (256, 256),
    n_particles: int = 12,
    snr: float = 0.5,
    min_separation: float | None = None,
    seed: int | np.random.Generator | None = 0,
) -> Micrograph:
    """Scatter projections of ``density`` over a noisy field.

    Particle centers are drawn uniformly, rejecting overlaps closer than
    ``min_separation`` (default: one box size).  Raises if the requested
    count cannot be placed in a reasonable number of attempts.
    """
    rng = default_rng(seed)
    h, w = shape
    box = density.size
    sep = float(box) if min_separation is None else float(min_separation)
    margin = box // 2 + 1
    if h < 2 * margin or w < 2 * margin:
        raise ValueError("micrograph too small for the particle box")

    positions: list[tuple[int, int]] = []
    attempts = 0
    while len(positions) < n_particles:
        attempts += 1
        if attempts > 200 * n_particles:
            raise ValueError("could not place all particles; lower n_particles or min_separation")
        r = int(rng.integers(margin, h - margin))
        c = int(rng.integers(margin, w - margin))
        if all((r - pr) ** 2 + (c - pc) ** 2 >= sep * sep for pr, pc in positions):
            positions.append((r, c))

    orientations = random_orientations(n_particles, seed=rng)
    field = np.zeros(shape)
    for (r, c), orient in zip(positions, orientations):
        proj = project_map(density, orient, method="real")
        r0, c0 = r - box // 2, c - box // 2
        field[r0 : r0 + box, c0 : c0 + box] += proj
    signal_var = float(field.var())
    if signal_var > 0 and np.isfinite(snr) and snr > 0:
        field = field + rng.normal(0.0, np.sqrt(signal_var / snr), size=shape)
    return Micrograph(field, positions, orientations, box)


def _disk_template(box: int, radius: float) -> np.ndarray:
    k = np.arange(box) - box // 2
    ky, kx = np.meshgrid(k, k, indexing="ij")
    t = (kx * kx + ky * ky <= radius * radius).astype(float)
    return t - t.mean()


def pick_particles(
    micrograph: np.ndarray,
    box_size: int,
    n_expected: int,
    particle_radius: float | None = None,
    min_separation: float | None = None,
) -> list[tuple[int, int]]:
    """Locate particle centers by matched filtering with a disk template.

    Returns up to ``n_expected`` (row, col) peaks, greedily selected in
    decreasing correlation order with non-maximum suppression at
    ``min_separation`` (default 0.8·box).
    """
    img = np.asarray(micrograph, dtype=float)
    radius = box_size * 0.35 if particle_radius is None else particle_radius
    sep = 0.8 * box_size if min_separation is None else float(min_separation)
    template = _disk_template(box_size, radius)
    # normalized cross-correlation via FFT-friendly uniform filters
    corr = ndimage.correlate(img - img.mean(), template, mode="constant")
    local_sd = np.sqrt(
        np.clip(
            ndimage.uniform_filter(img * img, box_size) - ndimage.uniform_filter(img, box_size) ** 2,
            1e-12,
            None,
        )
    )
    score = corr / local_sd
    margin = box_size // 2
    score[:margin, :] = -np.inf
    score[-margin:, :] = -np.inf
    score[:, :margin] = -np.inf
    score[:, -margin:] = -np.inf

    picks: list[tuple[int, int]] = []
    flat_order = np.argsort(score, axis=None)[::-1]
    for flat in flat_order:
        if len(picks) >= n_expected:
            break
        r, c = np.unravel_index(int(flat), score.shape)
        if not np.isfinite(score[r, c]):
            break
        if all((r - pr) ** 2 + (c - pc) ** 2 >= sep * sep for pr, pc in picks):
            picks.append((int(r), int(c)))
    return picks


def extract_particles(
    micrograph: np.ndarray, centers: list[tuple[int, int]], box_size: int
) -> np.ndarray:
    """Box out particles at the given centers; returns shape ``(n, box, box)``.

    Centers too close to the edge raise, mirroring the production pipeline's
    rejection of edge particles.
    """
    img = np.asarray(micrograph, dtype=float)
    half = box_size // 2
    out = np.empty((len(centers), box_size, box_size))
    for i, (r, c) in enumerate(centers):
        r0, c0 = r - half, c - half
        if r0 < 0 or c0 < 0 or r0 + box_size > img.shape[0] or c0 + box_size > img.shape[1]:
            raise ValueError(f"particle {i} at {(r, c)} too close to the edge")
        out[i] = img[r0 : r0 + box_size, c0 : c0 + box_size]
    return out
