"""Process-parallel view scheduler (the paper's step-b fan-out, real processes).

The simulated cluster in :mod:`repro.parallel.prefine` reproduces the
paper's *accounting*; this module reproduces its *throughput* on real
hardware.  Views are embarrassingly parallel within a resolution level
(the only synchronization point is the per-level barrier, step m), so the
scheduler:

* shares the oversampled D̂ once per machine via
  ``multiprocessing.shared_memory`` — the in-process analog of the paper's
  one-replica-per-node decision (step b) — instead of pickling the volume
  into every task;
* fans views out in contiguous chunks over a ``concurrent.futures``
  process pool, several chunks per worker so stragglers (views whose
  windows slide) rebalance;
* caches the per-process :class:`DistanceComputer` (and therefore its
  fused :class:`~repro.align.fused.MatchPlan`) across chunks and levels,
  so plans are built once per worker, not once per task;
* falls back to a plain serial loop when ``n_workers == 1`` — the same
  :func:`refine_level_serial` used by the serial refiner and the simulated
  cluster, so all three drivers execute the identical per-view kernel and
  return bit-identical results.

Fault tolerance (DESIGN.md §8): a chunk whose worker dies, hangs past the
:class:`~repro.faults.retry.RetryPolicy` timeout, or returns a poisoned
result is re-queued with backoff onto a recycled pool; once a chunk's
attempt budget or the level's pool-restart budget is exhausted, the chunk
runs on the in-process serial path, which no worker fault can kill.
Because every path executes the identical per-view kernel, recovery is
invisible in the numbers — results stay bit-identical to a fault-free run.
Deterministic failures for the chaos harness are injected via a seeded
:class:`~repro.faults.plan.FaultPlan` that workers consult by chunk site;
the shared-D̂ segment is guaranteed to be unlinked even when the level
aborts abnormally.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.align.distance import DistanceComputer
from repro.align.memo import MemoStore
from repro.analysis.contracts import array_contract, spec
from repro.arraytypes import Array
from repro.faults.plan import FaultInjected, FaultLog, FaultPlan, chunk_site, level_site
from repro.faults.retry import ChunkIntegrityError, RetryPolicy, validate_chunk_results
from repro.geometry.euler import Orientation
from repro.perf import PerfCounters
from repro.refine.multires import RefinementLevel
from repro.refine.prune import PruneParams
from repro.refine.single import refine_view_at_level

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a refine cycle)
    from repro.refine.restrict import SymmetryRestriction

__all__ = [
    "ViewLevelResult",
    "ViewPolishResult",
    "SharedVolume",
    "ViewScheduler",
    "refine_level_serial",
    "polish_level_serial",
    "chunk_indices",
]

#: exit status used by injected worker crashes (distinguishable in logs
#: from a real interpreter fault).
INJECTED_CRASH_EXIT = 17


@dataclass(frozen=True)
class ViewLevelResult:
    """Outcome of one view × one level, tagged with the view's global index.

    ``basins`` is the view's top-k basin centers when multi-basin pruning
    is on (the next level's seeds); empty otherwise.  It is plain picklable
    data, so it rides the pool fan-out like every other field.
    """

    index: int
    orientation: Orientation
    distance: float
    n_windows: int
    n_matches: int
    n_center_evals: int
    slid_window: bool
    slid_center: bool
    basins: tuple[Orientation, ...] = ()


def chunk_indices(n_items: int, n_chunks: int) -> list[Array]:
    """Contiguous, near-equal index chunks covering ``range(n_items)``.

    Returns at most ``n_chunks`` non-empty chunks (fewer when there are
    fewer items than chunks).
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    if n_items == 0:
        return []
    return [c for c in np.array_split(np.arange(n_items), min(n_chunks, n_items)) if c.size]


def refine_level_serial(
    volume_ft: Array,
    view_fts: Array,
    orientations: Sequence[Orientation],
    modulations: Sequence[Array | None] | None,
    level: RefinementLevel,
    *,
    distance_computer: DistanceComputer | None = None,
    kernel: str = "fused",
    interpolation: str = "trilinear",
    max_slides: int = 8,
    refine_centers: bool = True,
    inner_iterations: int = 2,
    memo_store: MemoStore | None = None,
    view_indices: Sequence[int] | None = None,
    counters: PerfCounters | None = None,
    prune: PruneParams | None = None,
    seed_basins: Sequence[tuple[Orientation, ...] | None] | None = None,
    symmetry: "SymmetryRestriction | None" = None,
    on_result: Callable[[ViewLevelResult], None] | None = None,
) -> list[ViewLevelResult]:
    """Steps f–l for a set of views at one level, serially in this process.

    This is the single per-view loop shared by the serial refiner, the
    simulated cluster and the process pool workers.

    ``memo_store`` / ``counters`` are the batched kernel's orientation memo
    and perf counters (ignored by the other kernels).  Memos are keyed by
    *global* view index; ``view_indices`` maps the local position ``q`` to
    that global index when this call covers a chunk of a larger view set
    (defaults to the identity mapping).

    ``prune`` enables the early-termination bound inside each batched
    window scan; ``seed_basins`` carries each view's previous-level basin
    centers (aligned with ``orientations``, entries may be ``None``) for
    the multi-basin fan-out.  ``symmetry`` restricts the search to one
    asymmetric unit (batched kernel only, DESIGN.md §13); it is plain
    picklable data, so it rides worker payloads like ``prune``.

    ``on_result`` fires once per view as its result is appended, carrying
    the *local*-index :class:`ViewLevelResult` — callers that cover a
    chunk of a larger set must re-tag indices before observing it, which
    is why the pooled scheduler never passes it into worker payloads
    (callbacks aren't picklable; streaming consumption is master-side
    only, see :meth:`ViewScheduler.run_level`).
    """
    out: list[ViewLevelResult] = []
    for q in range(len(orientations)):
        memo = None
        if memo_store is not None:
            global_q = q if view_indices is None else int(view_indices[q])
            memo = memo_store.for_view(global_q)
        res = refine_view_at_level(
            view_fts[q],
            volume_ft,
            orientations[q],
            angular_step_deg=level.angular_step_deg,
            center_step_px=level.center_step_px,
            half_steps=level.half_steps,
            center_half_steps=level.center_half_steps,
            max_slides=max_slides,
            distance_computer=distance_computer,
            interpolation=interpolation,
            refine_centers=refine_centers,
            inner_iterations=inner_iterations,
            cut_modulation=None if modulations is None else modulations[q],
            kernel=kernel,
            memo=memo,
            counters=counters,
            prune=prune,
            seed_basins=None if seed_basins is None else seed_basins[q],
            symmetry=symmetry,
        )
        out.append(
            ViewLevelResult(
                index=q,
                orientation=res.orientation,
                distance=res.distance,
                n_windows=res.n_windows,
                n_matches=res.n_matches,
                n_center_evals=res.n_center_evals,
                slid_window=res.slid_window,
                slid_center=res.slid_center,
                basins=res.basins,
            )
        )
        if on_result is not None:
            on_result(out[-1])
    return out


class SharedVolume:
    """A copy of an ndarray in POSIX shared memory, attachable by name.

    One replica of D̂ per machine, exactly as the paper replicates D̂ once
    per node: workers attach read-only by name instead of receiving a
    pickled copy per task.  The creating process owns the segment's
    lifetime; :meth:`close` (idempotent, also run from ``__del__`` as a
    last resort) both detaches and unlinks, so a scheduler that unwinds
    through an exception cannot orphan the segment.
    """

    def __init__(self, array: Array) -> None:
        arr = np.ascontiguousarray(array)
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=arr.nbytes
        )
        self.shape = arr.shape
        self.dtype = arr.dtype
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._shm.buf)
        view[...] = arr
        self.name = self._shm.name

    def descriptor(self) -> tuple[str, tuple[int, ...], str]:
        """Picklable (name, shape, dtype) handle for workers."""
        return (self.name, self.shape, self.dtype.str)

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            # interpreter teardown: modules the close path needs may be gone
            pass


# -- worker side ------------------------------------------------------------
# Per-process caches: the attached D̂ replica (keyed by segment name) and
# the distance computer / plan state (keyed by the scheduler's spec id).
_WORKER_VOLUMES: dict[str, tuple[Any, Array]] = {}
_WORKER_SPECS: dict[str, DistanceComputer | None] = {}
_WORKER_CLEANUP_REGISTERED = False


def _close_worker_volumes() -> None:
    """Detach every cached D̂ replica (worker atexit: no fd/mapping leaks)."""
    for shm, _ in _WORKER_VOLUMES.values():
        try:
            shm.close()
        except OSError:
            pass
    # repro-lint: allow[RL013] _WORKER_VOLUMES is this worker's own attach
    # cache; clearing it at atexit detaches mappings and never crosses back
    # to the parent.
    _WORKER_VOLUMES.clear()


@array_contract(ret=spec(shape=("v", "v", "v"), dtype="inexact", contiguous=True))
def _attach_volume(descriptor: tuple[str, tuple[int, ...], str]) -> Array:
    # repro-lint: allow[RL013] the cleanup flag is deliberately per-process:
    # each worker registers its own atexit hook exactly once.
    global _WORKER_CLEANUP_REGISTERED
    name, shape, dtype = descriptor
    cached = _WORKER_VOLUMES.get(name)
    if cached is None:
        if not _WORKER_CLEANUP_REGISTERED:
            atexit.register(_close_worker_volumes)
            _WORKER_CLEANUP_REGISTERED = True
        shm = shared_memory.SharedMemory(name=name)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        arr.setflags(write=False)
        # keep the SharedMemory object alive for the array's lifetime
        # repro-lint: allow[RL013] per-process attach cache by design: each
        # worker maps the segment once and reuses the same read-only view.
        _WORKER_VOLUMES[name] = (shm, arr)
        return arr
    return cached[1]


#: What a worker ships back per chunk: the per-view results, the chunk's
#: orientation-memo state (view index -> key/value arrays; ``None`` when
#: memoization is off) and the chunk's perf counters (``None`` when the
#: caller did not ask for them).
ChunkReturn = tuple[list[ViewLevelResult], dict[int, tuple[Array, Array]] | None, PerfCounters | None]


def _worker_refine_chunk(payload: dict[str, Any]) -> ChunkReturn:
    """Run one chunk of views in a worker process (module-level: picklable).

    Consults the payload's :class:`FaultPlan` (chaos harness only; the
    plan is empty in production) at this chunk's site: an injected crash
    is a hard ``os._exit`` — exactly what a segfaulted or OOM-killed
    worker looks like to the parent pool.

    When the payload carries ``memo_states`` the worker seeds a local
    :class:`MemoStore` from them (warm entries from earlier levels /
    chunks of the same views), and its final state rides back in the
    return value so the scheduler can absorb it into the master store.
    """
    fault_plan: FaultPlan | None = payload.get("fault_plan")
    site: str = payload.get("site", "")
    attempt: int = int(payload.get("attempt", 0))
    if fault_plan is not None:
        if fault_plan.should("crash-before", site, attempt):
            os._exit(INJECTED_CRASH_EXIT)
        delay = fault_plan.lookup("delay", site, attempt)
        if delay is not None and delay.delay_s > 0:
            time.sleep(delay.delay_s)
    volume = _attach_volume(payload["volume"])
    spec_id = payload["spec_id"]
    if spec_id not in _WORKER_SPECS:
        # repro-lint: allow[RL013] per-process spec memo keyed by the
        # scheduler's spec id; workers never share it and the parent keeps
        # the authoritative copy in the payload.
        _WORKER_SPECS[spec_id] = payload["distance_computer"]
    dc = _WORKER_SPECS[spec_id]
    indices = payload["indices"]
    memo_states = payload.get("memo_states")
    memo_store: MemoStore | None = None
    if memo_states is not None:
        memo_store = MemoStore()
        memo_store.import_state(memo_states)
    counters = PerfCounters() if payload.get("collect_perf") else None
    results = refine_level_serial(
        volume,
        payload["view_fts"],
        payload["orientations"],
        payload["modulations"],
        payload["level"],
        distance_computer=dc,
        kernel=payload["kernel"],
        interpolation=payload["interpolation"],
        max_slides=payload["max_slides"],
        refine_centers=payload["refine_centers"],
        inner_iterations=payload["inner_iterations"],
        memo_store=memo_store,
        view_indices=indices,
        counters=counters,
        prune=payload.get("prune"),
        seed_basins=payload.get("seed_basins"),
        symmetry=payload.get("symmetry"),
    )
    out = [replace(r, index=int(indices[r.index])) for r in results]
    if fault_plan is not None:
        if out and fault_plan.should("poison", site, attempt):
            out[0] = replace(out[0], distance=float("nan"))
        if fault_plan.should("crash-after", site, attempt):
            os._exit(INJECTED_CRASH_EXIT)
    return out, None if memo_store is None else memo_store.export_state(), counters


# -- polish fan-out ----------------------------------------------------------
@dataclass(frozen=True)
class ViewPolishResult:
    """Outcome of the continuous polish for one view (global index tagged).

    ``orientation`` / ``distance`` are the best over the view's polish
    starts — never worse than the incoming grid result, because the LM
    loop only accepts strictly-improving steps and the grid value is the
    fallback.  ``n_iterations`` sums over starts.
    """

    index: int
    orientation: Orientation
    distance: float
    n_iterations: int = 0
    converged: bool = True


def polish_level_serial(
    volume_ft: Array,
    view_fts: Array,
    orientations: Sequence[Orientation],
    distances: Sequence[float] | Array,
    modulations: Sequence[Array | None] | None,
    *,
    distance_computer: DistanceComputer | None = None,
    interpolation: str = "trilinear",
    max_iters: int = 30,
    tol: float = 1e-8,
    damping: float = 1e-3,
    n_best: int = 1,
    seed_basins: Sequence[tuple[Orientation, ...] | None] | None = None,
    memo_store: MemoStore | None = None,
    view_indices: Sequence[int] | None = None,
    counters: PerfCounters | None = None,
    on_result: Callable[[ViewPolishResult], None] | None = None,
) -> list[ViewPolishResult]:
    """The Gauss–Newton polish stage for a set of views, serially.

    The per-view logic is exactly the refiner's former inline loop: each
    view starts from its current grid winner (or its ``seed_basins`` top
    ``n_best`` starts when multi-basin pruning tracked them), polishes
    every start, and keeps the best strictly-improving result — the grid
    value wins ties.  Views are independent, so this is the shared kernel
    for the serial path, the process-pool workers, and the serial
    fallback, making every fan-out strategy bit-identical.
    """
    from repro.align.fused import get_match_plan
    from repro.refine.polish import polish_view

    dc = distance_computer or DistanceComputer(np.asarray(view_fts).shape[1])
    plan = get_match_plan(dc, volume_ft.shape[0], interpolation)
    out: list[ViewPolishResult] = []
    for q in range(len(orientations)):
        memo = None
        if memo_store is not None:
            global_q = q if view_indices is None else int(view_indices[q])
            memo = memo_store.for_view(global_q)
        view_band = plan.gather_view(view_fts[q])
        starts: tuple[Orientation, ...] = (orientations[q],)
        if seed_basins is not None and seed_basins[q]:
            starts = tuple(seed_basins[q][:n_best]) or starts
        best_o, best_d = orientations[q], float(distances[q])
        n_iters = 0
        converged = True
        for start in starts:
            polished = polish_view(
                view_band,
                volume_ft,
                plan,
                start,
                cut_modulation=None if modulations is None else modulations[q],
                max_iters=max_iters,
                tol=tol,
                damping=damping,
                memo=memo,
                counters=counters,
            )
            n_iters += polished.n_iterations
            converged = converged and polished.converged
            if polished.distance < best_d:
                best_o, best_d = polished.orientation, polished.distance
        out.append(
            ViewPolishResult(
                index=q,
                orientation=best_o,
                distance=best_d,
                n_iterations=n_iters,
                converged=converged,
            )
        )
        if on_result is not None:
            on_result(out[-1])
    return out


#: What a polish worker ships back per chunk, mirroring :data:`ChunkReturn`.
PolishChunkReturn = tuple[
    list[ViewPolishResult], dict[int, tuple[Array, Array]] | None, PerfCounters | None
]


def _worker_polish_chunk(payload: dict[str, Any]) -> PolishChunkReturn:
    """Polish one chunk of views in a worker process (module-level: picklable).

    Shares the refine-chunk worker's caches: the attached D̂ replica and
    the per-process distance-computer/plan state, so a pool that just ran
    the grid levels polishes with zero re-setup.
    """
    volume = _attach_volume(payload["volume"])
    spec_id = payload["spec_id"]
    if spec_id not in _WORKER_SPECS:
        # repro-lint: allow[RL013] per-process spec memo keyed by the
        # scheduler's spec id; workers never share it and the parent keeps
        # the authoritative copy in the payload.
        _WORKER_SPECS[spec_id] = payload["distance_computer"]
    dc = _WORKER_SPECS[spec_id]
    indices = payload["indices"]
    memo_states = payload.get("memo_states")
    memo_store: MemoStore | None = None
    if memo_states is not None:
        memo_store = MemoStore()
        memo_store.import_state(memo_states)
    counters = PerfCounters() if payload.get("collect_perf") else None
    results = polish_level_serial(
        volume,
        payload["view_fts"],
        payload["orientations"],
        payload["distances"],
        payload["modulations"],
        distance_computer=dc,
        interpolation=payload["interpolation"],
        max_iters=payload["max_iters"],
        tol=payload["tol"],
        damping=payload["damping"],
        n_best=payload["n_best"],
        seed_basins=payload.get("seed_basins"),
        memo_store=memo_store,
        view_indices=indices,
        counters=counters,
    )
    out = [replace(r, index=int(indices[r.index])) for r in results]
    return out, None if memo_store is None else memo_store.export_state(), counters


def _run_task(payload: tuple[Any, Any]) -> Any:
    """Apply a pickled callable to one payload (module-level: picklable)."""
    fn, arg = payload
    return fn(arg)


# -- scheduler --------------------------------------------------------------
class ViewScheduler:
    """Fans per-view refinement out over a process pool (or runs serially).

    Parameters
    ----------
    n_workers:
        Process count; ``1`` (default) runs everything inline with no pool
        and no shared memory — the exact serial code path.
    chunks_per_worker:
        Oversubscription factor: each level is split into
        ``n_workers · chunks_per_worker`` chunks so a straggler chunk (a
        view whose windows slide) does not idle the other workers.
    mp_context:
        Optional multiprocessing start method (``"fork"``, ``"spawn"``, …);
        platform default when ``None``.
    retry_policy:
        How lost/hung/poisoned chunks are retried and when the level
        degrades to the serial path (defaults to :class:`RetryPolicy`).
    fault_plan:
        Deterministic fault injection for the chaos harness; the empty
        plan (no faults) by default.

    Recovery actions taken during a run are appended to :attr:`fault_log`
    (a :class:`~repro.faults.plan.FaultLog`), which the chaos tests read
    to assert that the path under test actually fired.

    Use as a context manager, or call :meth:`close` when done — it shuts
    the pool down and unlinks the shared D̂ replica.  If a level unwinds
    with an unrecoverable error, the replica is unlinked *before* the
    exception propagates, so no ``/dev/shm`` segment outlives the run.
    """

    def __init__(
        self,
        n_workers: int = 1,
        chunks_per_worker: int = 4,
        mp_context: str | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.n_workers = int(n_workers)
        self.chunks_per_worker = int(chunks_per_worker)
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_plan = fault_plan or FaultPlan.none()
        self.fault_log = FaultLog()
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._shared: SharedVolume | None = None
        self._shared_key: int | None = None
        self._spec_ids: dict[int, str] = {}
        self._level_seq = 0

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "ViewScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool and unlink the shared volume (idempotent).

        The unlink is in a ``finally``: even a pool whose shutdown raises
        (e.g. already broken by a killed worker) cannot leak the segment.
        """
        try:
            if self._executor is not None:
                executor, self._executor = self._executor, None
                executor.shutdown(wait=True)
        finally:
            self._release_shared()

    def _release_shared(self) -> None:
        if self._shared is not None:
            shared, self._shared = self._shared, None
            self._shared_key = None
            shared.close()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing as mp

            ctx = mp.get_context(self._mp_context) if self._mp_context else mp.get_context()
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers, mp_context=ctx)
        return self._executor

    def _restart_pool(self) -> None:
        """Discard a broken/hung pool; the next submit builds a fresh one.

        ``wait=False`` + ``cancel_futures=True``: a hung worker must not
        block recovery — its process exits on its own once the injected
        delay (or real stall) ends, and the queued tasks are re-issued to
        the replacement pool by the retry loop.
        """
        if self._executor is not None:
            executor, self._executor = self._executor, None
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                # a pool broken by a dead worker may raise while unwinding
                # its management thread; the replacement pool is unaffected
                pass

    def _share(self, volume_ft: Array) -> SharedVolume:
        # The caller keeps volume_ft alive for the scheduler's lifetime
        # (the refiner holds it for the whole run), so id() is a stable key.
        key = id(volume_ft)
        if self._shared is not None and self._shared_key == key:
            return self._shared
        self._release_shared()
        self._shared = SharedVolume(volume_ft)
        self._shared_key = key
        return self._shared

    def _spec_id(self, distance_computer: DistanceComputer | None) -> str:
        key = id(distance_computer)
        spec = self._spec_ids.get(key)
        if spec is None:
            spec = f"spec-{id(self):x}-{len(self._spec_ids)}"
            self._spec_ids[key] = spec
        return spec

    # -- the level fan-out ---------------------------------------------------
    def run_level(
        self,
        volume_ft: Array,
        view_fts: Array,
        orientations: Sequence[Orientation],
        modulations: Sequence[Array | None] | None,
        level: RefinementLevel,
        *,
        distance_computer: DistanceComputer | None = None,
        kernel: str = "fused",
        interpolation: str = "trilinear",
        max_slides: int = 8,
        refine_centers: bool = True,
        inner_iterations: int = 2,
        memo_store: MemoStore | None = None,
        counters: PerfCounters | None = None,
        prune: PruneParams | None = None,
        seed_basins: Sequence[tuple[Orientation, ...] | None] | None = None,
        symmetry: "SymmetryRestriction | None" = None,
        on_result: Callable[[ViewLevelResult], None] | None = None,
    ) -> list[ViewLevelResult]:
        """Steps f–l for every view at one level; results ordered by view index.

        Results are bit-identical to :func:`refine_level_serial` regardless
        of worker count, chunking, or how many injected/real faults were
        recovered along the way, since views are independent and every
        recovery path re-executes the identical kernel.

        ``memo_store`` (batched kernel) is consulted and updated: pooled
        chunks carry their views' memo entries out in the payload and ship
        the warmed state back for the scheduler to absorb, so re-centers
        and later levels hit the cache whether views run in-process or in
        workers — absorbing a memo can never change a value (exact keys,
        immutable entries), only save gathers.  ``counters`` accumulates
        the per-window perf counters from every path, including worker
        processes.

        ``prune`` / ``seed_basins`` thread the early-termination bound and
        the per-view multi-basin seeds through every execution path.  The
        k-th-best tracker lives inside each view's own window search, so
        pruning decisions — like everything else — are independent of
        chunking and worker count.

        ``on_result`` is the streaming hook (DESIGN.md §14): it fires on
        the master, exactly once per view, with the globally-indexed
        :class:`ViewLevelResult`, in whatever order chunks complete.  On
        the pooled path a chunk's results are observed only *after*
        :func:`validate_chunk_results` accepts them — a poisoned, retried
        or timed-out chunk never reaches the consumer, and the serial
        fallback fires after its indices are re-tagged to global.
        Callbacks never enter worker payloads (they aren't picklable).
        """
        seq = self._level_seq
        self._level_seq += 1
        abort = self.fault_plan.lookup("abort-level", level_site(seq))
        if abort is not None:
            self.fault_log.record("abort-level", level_site(seq), action="abort")
            raise FaultInjected(f"injected abort at {level_site(seq)}")
        m = len(orientations)
        serial_kwargs: dict[str, Any] = dict(
            distance_computer=distance_computer,
            kernel=kernel,
            interpolation=interpolation,
            max_slides=max_slides,
            refine_centers=refine_centers,
            inner_iterations=inner_iterations,
            prune=prune,
            symmetry=symmetry,
        )
        if self.n_workers == 1 or m < 2:
            # local indices are global here: the call covers the whole set
            return refine_level_serial(
                volume_ft,
                view_fts,
                orientations,
                modulations,
                level,
                memo_store=memo_store,
                counters=counters,
                seed_basins=seed_basins,
                on_result=on_result,
                **serial_kwargs,
            )
        try:
            return self._run_level_pooled(
                seq,
                volume_ft,
                view_fts,
                orientations,
                modulations,
                level,
                serial_kwargs,
                memo_store=memo_store,
                counters=counters,
                seed_basins=seed_basins,
                on_result=on_result,
            )
        except BaseException:
            # unrecoverable (attempt budgets cannot save us from e.g. a
            # pickling bug or KeyboardInterrupt): never orphan the segment
            self._restart_pool()
            self._release_shared()
            raise

    def _run_level_pooled(
        self,
        seq: int,
        volume_ft: Array,
        view_fts: Array,
        orientations: Sequence[Orientation],
        modulations: Sequence[Array | None] | None,
        level: RefinementLevel,
        serial_kwargs: dict[str, Any],
        memo_store: MemoStore | None = None,
        counters: PerfCounters | None = None,
        seed_basins: Sequence[tuple[Orientation, ...] | None] | None = None,
        on_result: Callable[[ViewLevelResult], None] | None = None,
    ) -> list[ViewLevelResult]:
        """The pool fan-out with the retry/re-queue/degrade recovery loop."""
        policy = self.retry_policy
        shared = self._share(volume_ft)
        spec_id = self._spec_id(serial_kwargs["distance_computer"])
        chunks = chunk_indices(len(orientations), self.n_workers * self.chunks_per_worker)
        view_arr = np.asarray(view_fts)

        def payload_for(cid: int, attempt: int) -> dict[str, Any]:
            chunk = chunks[cid]
            return {
                "volume": shared.descriptor(),
                "spec_id": spec_id,
                "distance_computer": serial_kwargs["distance_computer"],
                "view_fts": view_arr[chunk],
                "orientations": [orientations[i] for i in chunk],
                "modulations": None
                if modulations is None
                else [modulations[i] for i in chunk],
                "level": level,
                "kernel": serial_kwargs["kernel"],
                "interpolation": serial_kwargs["interpolation"],
                "max_slides": serial_kwargs["max_slides"],
                "refine_centers": serial_kwargs["refine_centers"],
                "inner_iterations": serial_kwargs["inner_iterations"],
                "prune": serial_kwargs["prune"],
                "symmetry": serial_kwargs["symmetry"],
                "seed_basins": None
                if seed_basins is None
                else [seed_basins[i] for i in chunk],
                "indices": chunk,
                "memo_states": None
                if memo_store is None
                else memo_store.subset_state([int(i) for i in chunk]),
                "collect_perf": counters is not None,
                "fault_plan": self.fault_plan if self.fault_plan.specs else None,
                "site": chunk_site(seq, cid),
                "attempt": attempt,
            }

        def absorb_extras(
            memo_state: dict[int, tuple[Array, Array]] | None,
            perf: PerfCounters | None,
        ) -> None:
            if memo_store is not None and memo_state is not None:
                memo_store.import_state(memo_state)
            if counters is not None and perf is not None:
                counters.merge(perf)

        def run_chunk_serially(cid: int) -> list[ViewLevelResult]:
            chunk = chunks[cid]
            sub = refine_level_serial(
                volume_ft,
                view_arr[chunk],
                [orientations[i] for i in chunk],
                None if modulations is None else [modulations[i] for i in chunk],
                level,
                memo_store=memo_store,
                view_indices=[int(i) for i in chunk],
                counters=counters,
                seed_basins=None
                if seed_basins is None
                else [seed_basins[i] for i in chunk],
                **serial_kwargs,
            )
            retagged = [replace(r, index=int(chunk[r.index])) for r in sub]
            if on_result is not None:
                for r in retagged:
                    on_result(r)
            return retagged

        attempts = [0] * len(chunks)
        done: dict[int, list[ViewLevelResult]] = {}
        pending = list(range(len(chunks)))
        fallback: list[int] = []
        pool_restarts = 0
        while pending or fallback:
            for cid in fallback:
                done[cid] = run_chunk_serially(cid)
            fallback = []
            if not pending:
                break
            executor = self._ensure_executor()
            submitted: list[tuple[int, Future[ChunkReturn]]] = [
                (cid, executor.submit(_worker_refine_chunk, payload_for(cid, attempts[cid])))
                for cid in pending
            ]
            pending = []
            failed: list[int] = []
            pool_poisoned = False
            for cid, future in submitted:
                site = chunk_site(seq, cid)
                try:
                    results, memo_state, perf = future.result(timeout=policy.chunk_timeout_s)
                    validate_chunk_results(chunks[cid], results)
                    done[cid] = results
                    # only a validated chunk's memo/perf/results enter the
                    # master state — a poisoned result must not leave side
                    # effects, and the streaming consumer below must never
                    # observe one (nor see an accepted chunk twice)
                    absorb_extras(memo_state, perf)
                    if on_result is not None:
                        for r in results:
                            on_result(r)
                except ChunkIntegrityError as exc:
                    self.fault_log.record(
                        "poison", site, attempts[cid], "poison-detected", str(exc)
                    )
                    failed.append(cid)
                except FuturesTimeoutError:
                    self.fault_log.record("delay", site, attempts[cid], "timeout")
                    failed.append(cid)
                    pool_poisoned = True  # a hung worker occupies its slot
                except BrokenProcessPool as exc:
                    self.fault_log.record(
                        "crash-before", site, attempts[cid], "worker-lost", str(exc)
                    )
                    failed.append(cid)
                    pool_poisoned = True
                except Exception as exc:
                    # the worker raised (bug or corrupted payload): treat as
                    # a chunk failure so the serial fallback surfaces it.
                    # The retry taxonomy names the class so the log shows
                    # whether retrying could ever have helped (RL014
                    # guarantees reachable raises classify to something).
                    kind = policy.classify(exc) or "unclassified"
                    self.fault_log.record(
                        "poison", site, attempts[cid], "worker-error",
                        f"{kind}: {exc!r}",
                    )
                    failed.append(cid)
            if pool_poisoned:
                self._restart_pool()
                pool_restarts += 1
                self.fault_log.record(
                    "crash-before", f"L{seq}", action="pool-restart",
                    detail=f"restart {pool_restarts}/{policy.max_pool_restarts}",
                )
            for cid in failed:
                attempts[cid] += 1
                site = chunk_site(seq, cid)
                exhausted = (
                    attempts[cid] >= policy.max_attempts
                    or pool_restarts > policy.max_pool_restarts
                )
                if exhausted:
                    self.fault_log.record(
                        "crash-before", site, attempts[cid], "serial-fallback"
                    )
                    fallback.append(cid)
                else:
                    backoff = policy.backoff(attempts[cid])
                    if backoff > 0:
                        time.sleep(backoff)
                    self.fault_log.record("crash-before", site, attempts[cid], "retry")
                    pending.append(cid)
        results = [r for cid in sorted(done) for r in done[cid]]
        results.sort(key=lambda r: r.index)
        return results

    # -- the polish fan-out --------------------------------------------------
    def run_polish(
        self,
        volume_ft: Array,
        view_fts: Array,
        orientations: Sequence[Orientation],
        distances: Sequence[float] | Array,
        modulations: Sequence[Array | None] | None,
        *,
        distance_computer: DistanceComputer | None = None,
        interpolation: str = "trilinear",
        max_iters: int = 30,
        tol: float = 1e-8,
        damping: float = 1e-3,
        n_best: int = 1,
        seed_basins: Sequence[tuple[Orientation, ...] | None] | None = None,
        memo_store: MemoStore | None = None,
        counters: PerfCounters | None = None,
        on_result: Callable[[ViewPolishResult], None] | None = None,
    ) -> list[ViewPolishResult]:
        """The continuous polish stage for every view; ordered by view index.

        Views polish independently (a handful of LM iterations each), so
        the stage fans out exactly like :meth:`run_level`: shared D̂
        replica, contiguous chunks, per-chunk memo subset shipped out and
        absorbed back.  Results are bit-identical to
        :func:`polish_level_serial` regardless of worker count — the LM
        descent is deterministic per view, and memo hits return exact
        previous values.  A chunk that fails for any reason (dead worker,
        timeout, pickling bug) reruns once on the in-process serial path;
        polish chunks are not retried on the pool because the serial
        fallback is already exact.

        ``on_result`` streams globally-indexed results to the master as
        chunks complete, with the same once-per-view guarantee as
        :meth:`run_level`.
        """
        m = len(orientations)
        kwargs: dict[str, Any] = dict(
            distance_computer=distance_computer,
            interpolation=interpolation,
            max_iters=max_iters,
            tol=tol,
            damping=damping,
            n_best=n_best,
        )
        if self.n_workers == 1 or m < 2:
            return polish_level_serial(
                volume_ft,
                view_fts,
                orientations,
                distances,
                modulations,
                seed_basins=seed_basins,
                memo_store=memo_store,
                counters=counters,
                on_result=on_result,
                **kwargs,
            )
        try:
            return self._run_polish_pooled(
                volume_ft,
                view_fts,
                orientations,
                distances,
                modulations,
                kwargs,
                seed_basins=seed_basins,
                memo_store=memo_store,
                counters=counters,
                on_result=on_result,
            )
        except BaseException:
            self._restart_pool()
            self._release_shared()
            raise

    def _run_polish_pooled(
        self,
        volume_ft: Array,
        view_fts: Array,
        orientations: Sequence[Orientation],
        distances: Sequence[float] | Array,
        modulations: Sequence[Array | None] | None,
        kwargs: dict[str, Any],
        seed_basins: Sequence[tuple[Orientation, ...] | None] | None = None,
        memo_store: MemoStore | None = None,
        counters: PerfCounters | None = None,
        on_result: Callable[[ViewPolishResult], None] | None = None,
    ) -> list[ViewPolishResult]:
        shared = self._share(volume_ft)
        spec_id = self._spec_id(kwargs["distance_computer"])
        chunks = chunk_indices(len(orientations), self.n_workers * self.chunks_per_worker)
        view_arr = np.asarray(view_fts)
        dist_arr = np.asarray(distances, dtype=float)
        executor = self._ensure_executor()
        submitted: list[tuple[int, Future[PolishChunkReturn]]] = []
        for cid, chunk in enumerate(chunks):
            payload = {
                "volume": shared.descriptor(),
                "spec_id": spec_id,
                "distance_computer": kwargs["distance_computer"],
                "view_fts": view_arr[chunk],
                "orientations": [orientations[i] for i in chunk],
                "distances": dist_arr[chunk],
                "modulations": None
                if modulations is None
                else [modulations[i] for i in chunk],
                "interpolation": kwargs["interpolation"],
                "max_iters": kwargs["max_iters"],
                "tol": kwargs["tol"],
                "damping": kwargs["damping"],
                "n_best": kwargs["n_best"],
                "seed_basins": None
                if seed_basins is None
                else [seed_basins[i] for i in chunk],
                "indices": chunk,
                "memo_states": None
                if memo_store is None
                else memo_store.subset_state([int(i) for i in chunk]),
                "collect_perf": counters is not None,
            }
            submitted.append((cid, executor.submit(_worker_polish_chunk, payload)))
        done: dict[int, list[ViewPolishResult]] = {}
        failed: list[int] = []
        pool_poisoned = False
        for cid, future in submitted:
            try:
                results, memo_state, perf = future.result(
                    timeout=self.retry_policy.chunk_timeout_s
                )
                done[cid] = results
                if memo_store is not None and memo_state is not None:
                    memo_store.import_state(memo_state)
                if counters is not None and perf is not None:
                    counters.merge(perf)
                if on_result is not None:
                    for r in results:
                        on_result(r)
            except (FuturesTimeoutError, BrokenProcessPool) as exc:
                self.fault_log.record(
                    "crash-before", f"polish/{cid}", 0, "serial-fallback", repr(exc)
                )
                failed.append(cid)
                pool_poisoned = True
            except Exception as exc:
                self.fault_log.record(
                    "poison", f"polish/{cid}", 0, "serial-fallback", repr(exc)
                )
                failed.append(cid)
        if pool_poisoned:
            self._restart_pool()
        for cid in failed:
            chunk = chunks[cid]
            sub = polish_level_serial(
                volume_ft,
                view_arr[chunk],
                [orientations[i] for i in chunk],
                dist_arr[chunk],
                None if modulations is None else [modulations[i] for i in chunk],
                seed_basins=None
                if seed_basins is None
                else [seed_basins[i] for i in chunk],
                memo_store=memo_store,
                view_indices=[int(i) for i in chunk],
                counters=counters,
                **kwargs,
            )
            done[cid] = [replace(r, index=int(chunk[r.index])) for r in sub]
            if on_result is not None:
                for r in done[cid]:
                    on_result(r)
        results = [r for cid in sorted(done) for r in done[cid]]
        results.sort(key=lambda r: r.index)
        return results

    # -- generic task fan-out ------------------------------------------------
    def run_tasks(self, fn: Any, payloads: Sequence[Any]) -> list[Any]:
        """Apply a picklable function to independent payloads, in order.

        The scheduler's spelling of "embarrassingly parallel, no shared
        volume": used by the symmetry detector's axis×order scoring sweep.
        ``fn`` must be module-level picklable and deterministic; results
        come back in payload order.  Any worker failure reruns the failed
        payloads serially in-process, so the call as a whole cannot fail
        because of a pool fault.
        """
        items = list(payloads)
        if self.n_workers == 1 or len(items) < 2:
            return [fn(p) for p in items]
        executor = self._ensure_executor()
        futures = [executor.submit(_run_task, (fn, p)) for p in items]
        out: list[Any] = [None] * len(items)
        failed: list[int] = []
        pool_poisoned = False
        for i, future in enumerate(futures):
            try:
                out[i] = future.result(timeout=self.retry_policy.chunk_timeout_s)
            except (FuturesTimeoutError, BrokenProcessPool) as exc:
                self.fault_log.record(
                    "crash-before", f"task/{i}", 0, "serial-fallback", repr(exc)
                )
                failed.append(i)
                pool_poisoned = True
            except Exception as exc:
                self.fault_log.record(
                    "poison", f"task/{i}", 0, "serial-fallback", repr(exc)
                )
                failed.append(i)
        if pool_poisoned:
            self._restart_pool()
        for i in failed:
            out[i] = fn(items[i])
        return out
