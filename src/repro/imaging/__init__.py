"""Image formation: projectors, view simulation, micrographs, noise, centers.

This package is the Step-A substrate of the paper's pipeline: it produces
the set of experimental views ``E`` (with CTF, noise and center errors) that
the orientation refinement consumes, either directly or by synthesizing and
re-picking whole micrographs.
"""

from repro.imaging.project import fourier_project, project_map, real_project
from repro.imaging.noise import add_noise, estimate_snr, noise_sigma_for_snr
from repro.imaging.center import (
    center_of_mass_shift,
    cross_correlation_shift,
    phase_shift_ft,
    shift_image,
)
from repro.imaging.simulate import SimulatedViews, simulate_views
from repro.imaging.micrograph import (
    Micrograph,
    extract_particles,
    pick_particles,
    synthesize_micrograph,
)

__all__ = [
    "real_project",
    "fourier_project",
    "project_map",
    "add_noise",
    "estimate_snr",
    "noise_sigma_for_snr",
    "phase_shift_ft",
    "shift_image",
    "center_of_mass_shift",
    "cross_correlation_shift",
    "SimulatedViews",
    "simulate_views",
    "Micrograph",
    "synthesize_micrograph",
    "pick_particles",
    "extract_particles",
]
