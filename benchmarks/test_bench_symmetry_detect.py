"""E11 — §3/§6 claim: "if the virus exhibits any symmetry this method
allows us to determine its symmetry group".

Detects the point group of phantoms with C3, C4, icosahedral and no
symmetry, from the map alone (Fourier-space self-consistency of D̂).
"""

import pytest

from repro.pipeline import format_table
from repro.pipeline.experiments import run_symmetry_detection_experiment


def test_symmetry_detection(benchmark, save_artifact):
    out = benchmark.pedantic(
        lambda: run_symmetry_detection_experiment(
            kinds=("c3", "c4", "sindbis", "asymmetric"), size=32
        ),
        rounds=1, iterations=1,
    )

    assert out["c3"] == "C3"
    assert out["c4"] == "C4"
    assert out["asymmetric"] == "C1"
    # the Sindbis-like capsid must be identified as fully icosahedral (the
    # detector finds 2-, 3- and 5-fold axes and fits + verifies the full
    # 60-element group); a polyhedral subgroup is tolerated for robustness
    assert out["sindbis"] in ("I", "T")

    expected = {"c3": "C3", "c4": "C4", "sindbis": "I", "asymmetric": "C1"}
    table = format_table(
        ["phantom", "true group", "detected"],
        [[k, expected[k], v] for k, v in out.items()],
        title="Symmetry-group detection from the density map alone",
    )
    table += "\n\npaper sec. 3: 'can detect symmetry if one exists'"
    save_artifact("symmetry_detect.txt", table)
