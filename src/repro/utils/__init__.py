"""Shared numeric utilities: RNG seeding, timers, validation, unit conversion.

These helpers are deliberately dependency-light; every other subpackage may
import from :mod:`repro.utils` but not vice versa.
"""

from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.timing import StepTimer, Timer, format_seconds
from repro.utils.units import (
    frequency_to_resolution,
    resolution_to_shell_radius,
    shell_radius_to_resolution,
)
from repro.utils.validation import (
    require,
    require_cube,
    require_odd_or_even_square,
    require_positive,
    require_square,
)

__all__ = [
    "default_rng",
    "spawn_rngs",
    "Timer",
    "StepTimer",
    "format_seconds",
    "require",
    "require_positive",
    "require_square",
    "require_cube",
    "require_odd_or_even_square",
    "resolution_to_shell_radius",
    "shell_radius_to_resolution",
    "frequency_to_resolution",
]
