"""Plain-text tables and curves in the layout of the paper's artifacts."""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "format_timing_table", "format_curve"]


def format_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4g}"
    return str(v)


def format_timing_table(rows: list[dict[str, float]], title: str = "") -> str:
    """Render model/measured rows in the transposed layout of Tables 1–2.

    ``rows`` is one dict per angular-resolution level with the keys produced
    by :meth:`repro.parallel.perf_model.PerformanceModel.predict_table`.
    """
    if not rows:
        raise ValueError("no rows")
    resolutions = [r["angular_resolution_deg"] for r in rows]
    headers = ["Angular resolution (deg)"] + [f"{r:g}" for r in resolutions]
    fields = ["search_range", "3D DFT", "Read image", "FFT analysis", "Orientation refinement", "Total"]
    labels = {
        "search_range": "Search range (matchings)",
        "3D DFT": "3D DFT (s)",
        "Read image": "Read image (s)",
        "FFT analysis": "FFT analysis (s)",
        "Orientation refinement": "Orientation refinement (s)",
        "Total": "Total time (s)",
    }
    body = []
    for f in fields:
        if all(f in r for r in rows):
            body.append([labels[f]] + [r[f] for r in rows])
    return format_table(headers, body, title=title)


def format_curve(
    x: np.ndarray, series: dict[str, np.ndarray], x_label: str = "resolution (A)", title: str = ""
) -> str:
    """Multi-series curve as a text table (one row per x sample)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, xv in enumerate(np.asarray(x)):
        rows.append([float(xv)] + [float(np.asarray(s)[i]) for s in series.values()])
    return format_table(headers, rows, title=title)
