"""Tests for the sliding-window angular search (steps f–i)."""

import numpy as np
import pytest

from repro.align import DistanceComputer
from repro.fourier.slicing import extract_slice
from repro.geometry import Orientation, orientation_distance_deg
from repro.refine import sliding_window_search


@pytest.fixture(scope="module")
def setup(request):
    from repro.density import asymmetric_phantom

    density = asymmetric_phantom(24, seed=3).normalized()
    vft = density.fourier_oversampled(2)
    truth = Orientation(60.0, 40.0, 25.0)
    view = extract_slice(vft, truth.matrix(), out_size=24)
    dc = DistanceComputer(24, r_max=10)
    return vft, truth, view, dc


def test_converges_inside_window(setup):
    vft, truth, view, dc = setup
    start = Orientation(61.5, 39.0, 26.0)
    res = sliding_window_search(view, vft, start, step_deg=0.5, half_steps=3, distance_computer=dc)
    assert orientation_distance_deg(res.orientation, truth) < 0.6
    assert res.n_windows >= 1


def test_no_slide_when_truth_in_interior(setup):
    vft, truth, view, dc = setup
    res = sliding_window_search(view, vft, truth, step_deg=1.0, half_steps=2, distance_computer=dc)
    assert not res.slid
    assert res.n_windows == 1
    assert res.n_matches == 5**3
    assert res.orientation.as_tuple() == pytest.approx(truth.as_tuple())


def test_slides_to_reach_outside_truth(setup):
    # truth 5 deg away; window only spans +-2 deg: must slide to get there
    vft, truth, view, dc = setup
    start = Orientation(truth.theta + 5.0, truth.phi, truth.omega)
    res = sliding_window_search(
        view, vft, start, step_deg=1.0, half_steps=2, max_slides=10, distance_computer=dc
    )
    assert res.slid
    assert res.n_windows > 1
    assert res.n_matches > 5**3  # the paper's "more matchings when sliding"
    assert orientation_distance_deg(res.orientation, truth) < 1.5


def test_max_slides_zero_stays_in_window(setup):
    vft, truth, view, dc = setup
    start = Orientation(truth.theta + 5.0, truth.phi, truth.omega)
    res = sliding_window_search(
        view, vft, start, step_deg=1.0, half_steps=2, max_slides=0, distance_computer=dc
    )
    assert res.n_windows == 1
    # best it can do is the window edge, 3 deg from truth
    assert orientation_distance_deg(res.orientation, truth) > 2.0


def test_max_slides_negative_raises(setup):
    vft, truth, view, dc = setup
    with pytest.raises(ValueError):
        sliding_window_search(view, vft, truth, 1.0, max_slides=-1, distance_computer=dc)


def test_matches_counted_per_window(setup):
    vft, truth, view, dc = setup
    res = sliding_window_search(view, vft, truth, step_deg=1.0, half_steps=1, distance_computer=dc)
    assert res.n_matches == res.n_windows * 27


# -- batched kernel + memo bit-identity (hypothesis) --------------------------
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.align.memo import OrientationMemo  # noqa: E402
from repro.perf import PerfCounters  # noqa: E402


@given(
    dtheta=st.floats(min_value=-3.0, max_value=3.0),
    dphi=st.floats(min_value=-3.0, max_value=3.0),
    domega=st.floats(min_value=-3.0, max_value=3.0),
    step=st.sampled_from([0.5, 1.0, 2.0]),
    prewarm=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_memoized_search_is_bit_identical(setup, dtheta, dphi, domega, step, prewarm):
    """Memo on, memo off, memo warm: one SlidingWindowResult, same bits.

    ``prewarm`` runs an extra search first so some examples hit a memo
    already populated by a *different* window — the cross-recenter reuse
    the memo exists for.
    """
    vft, truth, view, dc = setup
    start = Orientation(truth.theta + dtheta, truth.phi + dphi, truth.omega + domega)
    kwargs = dict(step_deg=step, half_steps=2, max_slides=4, distance_computer=dc)
    plain = sliding_window_search(view, vft, start, kernel="batched", **kwargs)
    memo = OrientationMemo()
    counters = PerfCounters()
    if prewarm:
        sliding_window_search(view, vft, truth, kernel="batched", memo=memo, **kwargs)
    memoized = sliding_window_search(
        view, vft, start, kernel="batched", memo=memo, counters=counters, **kwargs
    )
    assert memoized == plain  # frozen dataclass: covers centers and n_matches
    assert counters.candidates == plain.n_matches
    # and both agree with the per-candidate fused kernel
    fused = sliding_window_search(view, vft, start, kernel="fused", **kwargs)
    assert plain.orientation.as_tuple() == fused.orientation.as_tuple()
    assert plain.distance == fused.distance
    assert plain.centers == fused.centers
