"""Audit: every chaos fault-plan seed is derived from the test id.

A literal seed in a chaos test is a trap — it silently couples the test to
one fault pattern, and a copy-pasted literal makes two tests share their
chaos.  The convention (enforced here by AST inspection, so it cannot rot)
is that any ``seed=``/first-positional seed reaching ``FaultPlan.scatter``
or ``FaultPlan(...)`` inside ``tests/chaos/`` must be an expression over
names (the ``chaos_seed`` fixture or arithmetic on it), never a bare
numeric literal.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

pytestmark = pytest.mark.chaos

CHAOS_DIR = Path(__file__).resolve().parent


def iter_chaos_sources():
    for path in sorted(CHAOS_DIR.glob("*.py")):
        if path.name != Path(__file__).name:
            yield path, ast.parse(path.read_text(), filename=str(path))


def is_literal_number(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return True
    # -5, +5 and 2 ** 16 style "computed literals" are still literals
    if isinstance(node, ast.UnaryOp):
        return is_literal_number(node.operand)
    if isinstance(node, ast.BinOp):
        return is_literal_number(node.left) and is_literal_number(node.right)
    return False


def seed_arguments(call: ast.Call):
    func = call.func
    # FaultPlan.scatter(seed, ...) — seed is the first positional argument
    if isinstance(func, ast.Attribute) and func.attr == "scatter":
        if call.args:
            yield call.args[0]
    # FaultPlan(..., seed=...) / FaultPlan.scatter(seed=...)
    if (isinstance(func, ast.Name) and func.id == "FaultPlan") or (
        isinstance(func, ast.Attribute) and func.attr in ("scatter", "FaultPlan")
    ):
        for kw in call.keywords:
            if kw.arg == "seed":
                yield kw.value


def test_no_literal_fault_plan_seeds():
    offences = []
    for path, tree in iter_chaos_sources():
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for seed in seed_arguments(node):
                if is_literal_number(seed):
                    offences.append(f"{path.name}:{seed.lineno}: literal fault-plan seed")
    assert not offences, (
        "chaos tests must derive fault-plan seeds from the test id "
        "(use the chaos_seed fixture):\n" + "\n".join(offences)
    )


def test_chaos_seed_fixture_is_nodeid_derived():
    """The fixture itself derives from the node id, per test, injectively-ish."""
    from tests.chaos.conftest import derive_seed

    a = derive_seed("tests/chaos/test_a.py::test_one")
    b = derive_seed("tests/chaos/test_a.py::test_two")
    assert a != b
    assert derive_seed("tests/chaos/test_a.py::test_one") == a
