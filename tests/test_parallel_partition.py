"""Tests for slab/block partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import block_distribution, slab_bounds, slab_sizes


@given(total=st.integers(0, 500), parts=st.integers(1, 64))
@settings(max_examples=100)
def test_slab_sizes_partition_exactly(total, parts):
    sizes = slab_sizes(total, parts)
    assert len(sizes) == parts
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1  # balanced


@given(total=st.integers(1, 300), parts=st.integers(1, 32))
@settings(max_examples=100)
def test_slab_bounds_cover_contiguously(total, parts):
    stops = []
    prev_stop = 0
    for rank in range(parts):
        lo, hi = slab_bounds(total, parts, rank)
        assert lo == prev_stop
        assert hi >= lo
        prev_stop = hi
    assert prev_stop == total


def test_slab_bounds_rank_validation():
    with pytest.raises(ValueError):
        slab_bounds(10, 4, 4)
    with pytest.raises(ValueError):
        slab_bounds(10, 4, -1)
    with pytest.raises(ValueError):
        slab_sizes(10, 0)
    with pytest.raises(ValueError):
        slab_sizes(-1, 4)


def test_block_distribution_matches_bounds():
    blocks = block_distribution(10, 3)
    assert [len(b) for b in blocks] == [4, 3, 3]
    assert np.array_equal(np.concatenate(blocks), np.arange(10))


def test_paper_case_l331_p16():
    # the Sindbis map: 331 planes over 16 processors
    sizes = slab_sizes(331, 16)
    assert sum(sizes) == 331
    assert set(sizes) == {20, 21}
