"""Tests for noise injection and SNR estimation."""

import numpy as np
import pytest

from repro.imaging import add_noise, estimate_snr


def test_add_noise_hits_requested_snr(phantom16, rng):
    img = phantom16.data.sum(axis=0)
    big = np.tile(img, (4, 4))  # more pixels -> tighter variance estimate
    noisy = add_noise(big, snr=2.0, seed=0)
    measured = estimate_snr(noisy, big)
    assert measured == pytest.approx(2.0, rel=0.15)


def test_add_noise_infinite_snr_is_copy(phantom16):
    img = phantom16.data.sum(axis=0)
    out = add_noise(img, snr=np.inf)
    assert np.array_equal(out, img)
    assert out is not img


def test_add_noise_deterministic(phantom16):
    img = phantom16.data.sum(axis=0)
    a = add_noise(img, 1.0, seed=5)
    b = add_noise(img, 1.0, seed=5)
    assert np.array_equal(a, b)


def test_add_noise_validation(phantom16):
    img = phantom16.data.sum(axis=0)
    with pytest.raises(ValueError):
        add_noise(img, snr=0.0)
    with pytest.raises(ValueError):
        add_noise(np.zeros((8, 8)), snr=1.0)


def test_estimate_snr_perfect():
    img = np.arange(64.0).reshape(8, 8)
    assert estimate_snr(img, img) == np.inf


def test_estimate_snr_shape_mismatch():
    with pytest.raises(ValueError):
        estimate_snr(np.zeros((4, 4)), np.zeros((8, 8)))


# -- SNR calibration (the scenario matrix keys off this) ---------------------


def test_noise_sigma_for_snr_matches_definition(phantom16):
    from repro.imaging import noise_sigma_for_snr

    img = phantom16.data.sum(axis=0)
    sigma = noise_sigma_for_snr(img, snr=2.0)
    assert sigma == pytest.approx(np.sqrt(img.var() / 2.0))
    assert noise_sigma_for_snr(img, np.inf) == 0.0
    with pytest.raises(ValueError):
        noise_sigma_for_snr(img, 0.0)
    with pytest.raises(ValueError):
        noise_sigma_for_snr(np.zeros((8, 8)), 1.0)


@pytest.mark.parametrize("snr", [0.5, 2.0, 10.0])
def test_realized_snr_statistically_calibrated(phantom16, snr):
    """Across seeds, the realized SNR matches the request: each draw within
    the O(1/sqrt(npix)) sampling scatter, and the mean much tighter."""
    img = np.tile(phantom16.data.sum(axis=0), (4, 4))  # 64x64
    measured = np.array(
        [estimate_snr(add_noise(img, snr, seed=s), img) for s in range(20)]
    )
    assert np.all(np.abs(measured / snr - 1.0) < 0.12)
    assert abs(measured.mean() / snr - 1.0) < 0.03


def test_exact_mode_realizes_snr_exactly(phantom16):
    img = phantom16.data.sum(axis=0)
    for snr in (0.5, 3.0):
        for seed in range(5):
            noisy = add_noise(img, snr, seed=seed, exact=True)
            assert estimate_snr(noisy, img) == pytest.approx(snr, rel=1e-9)


def test_exact_mode_same_noise_pattern(phantom16):
    """Exact mode rescales the same draw, it does not redraw."""
    img = phantom16.data.sum(axis=0)
    plain = add_noise(img, 2.0, seed=7) - img
    exact = add_noise(img, 2.0, seed=7, exact=True) - img
    centered = plain - plain.mean()
    assert np.corrcoef(centered.ravel(), exact.ravel())[0, 1] == pytest.approx(1.0)
