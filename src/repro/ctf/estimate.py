"""Defocus estimation from image power spectra.

The paper assumes the CTF parameters of each micrograph are known (they
are fitted upstream in the production pipeline).  This module supplies
that upstream step for the synthetic pipeline: a grid-plus-refinement fit
of the defocus to the rotationally averaged power spectrum, using the
standard matched-filter criterion — the measured radial spectrum should
oscillate in step with ``CTF²(s; Δf)``.

The background (structure + noise envelope) is removed by a smooth radial
baseline so only the oscillatory part is matched.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage, optimize

from repro.ctf.model import CTFParams, ctf_1d
from repro.fourier.shells import radial_shell_indices_2d, shell_average
from repro.fourier.transforms import centered_fft2
from repro.utils import require_square

__all__ = ["radial_power_spectrum", "estimate_defocus", "defocus_fit_score"]


def radial_power_spectrum(image: np.ndarray, max_radius: int | None = None) -> np.ndarray:
    """Rotationally averaged power spectrum |F|² per integer shell."""
    img = np.asarray(image, dtype=float)
    size = require_square(img)
    ps = np.abs(centered_fft2(img - img.mean())) ** 2
    return shell_average(ps, max_radius=max_radius).real


def _oscillatory_part(spectrum: np.ndarray, smooth_sigma: float = 2.0) -> np.ndarray:
    """Remove the smooth baseline, keeping the CTF oscillation."""
    log_spec = np.log(np.clip(spectrum, 1e-12, None))
    baseline = ndimage.gaussian_filter1d(log_spec, smooth_sigma)
    return log_spec - baseline


def defocus_fit_score(
    spectrum: np.ndarray,
    defocus_angstrom: float,
    size: int,
    apix: float,
    template: CTFParams,
    min_radius: int = 2,
) -> float:
    """Correlation between the spectrum's oscillation and CTF²(Δf).

    Higher is better; the true defocus maximizes it.
    """
    params = CTFParams(
        defocus_angstrom=defocus_angstrom,
        voltage_kv=template.voltage_kv,
        cs_mm=template.cs_mm,
        amplitude_contrast=template.amplitude_contrast,
        bfactor=0.0,
    )
    radii = np.arange(len(spectrum), dtype=float)
    s = radii / (size * apix)
    model = ctf_1d(params, s) ** 2
    # identical transform on both sides: log + same-width baseline removal,
    # so the zero dips line up between data and model
    model_osc = _oscillatory_part(np.clip(model, 1e-4, None))
    data_osc = _oscillatory_part(spectrum)
    a = data_osc[min_radius:]
    b = model_osc[min_radius:]
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def estimate_defocus(
    images: np.ndarray,
    apix: float,
    search_range: tuple[float, float] = (2000.0, 30000.0),
    n_grid: int = 120,
    template: CTFParams | None = None,
) -> tuple[float, float]:
    """Estimate the shared defocus of a stack of views from one micrograph.

    Parameters
    ----------
    images:
        One image ``(l, l)`` or a stack ``(m, l, l)``; spectra of a stack
        are averaged (views from one micrograph share the CTF).
    apix:
        Pixel size in Å.
    search_range:
        Defocus bracket in Å (underfocus convention).
    n_grid:
        Coarse grid points before the local polish.

    Returns ``(defocus_angstrom, score)``.
    """
    arr = np.asarray(images, dtype=float)
    if arr.ndim == 2:
        arr = arr[None]
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
        raise ValueError("images must be (l, l) or (m, l, l)")
    size = arr.shape[1]
    tpl = template or CTFParams()
    spectrum = np.zeros(size // 2 + 1)
    for img in arr:
        spectrum += radial_power_spectrum(img)
    spectrum /= arr.shape[0]

    lo, hi = search_range
    if not 0 < lo < hi:
        raise ValueError("invalid defocus search range")
    grid = np.linspace(lo, hi, n_grid)
    scores = np.array(
        [defocus_fit_score(spectrum, df, size, apix, tpl) for df in grid]
    )
    best = int(np.argmax(scores))
    # local polish with a bounded scalar optimizer
    bracket_lo = grid[max(0, best - 1)]
    bracket_hi = grid[min(n_grid - 1, best + 1)]
    res = optimize.minimize_scalar(
        lambda df: -defocus_fit_score(spectrum, df, size, apix, tpl),
        bounds=(bracket_lo, bracket_hi),
        method="bounded",
    )
    return float(res.x), float(-res.fun)
