"""Chaos tests for the outer determine-structure loop (DESIGN.md §14).

The killed run is modeled with an ``abort-level`` fault routed through the
loop's single shared backend: the scheduler's level sequence accumulates
across outer iterations, so with a two-level schedule iteration 0 consumes
``level:0``/``level:1`` and iteration 1 consumes ``level:2``/``level:3``.
Aborting at ``level:3`` therefore kills the run *mid*-iteration 1 — after
the loop checkpoint recorded iteration 0 and after iteration 1's first
level hit its inner checkpoint — and aborting at ``level:2`` kills it at
the iteration boundary.  Resume must reproduce the uninterrupted run's
:class:`~repro.reconstruct.iterate.IterationRecord` history exactly:
orientations, FSC crossings, maps, and the stop decision.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine.config import (
    EngineConfig,
    IterationConfig,
    ParallelConfig,
    ScheduleConfig,
)
from repro.faults.checkpoint import (
    iteration_checkpoint_path,
    load_checkpoint,
    load_loop_checkpoint,
)
from repro.faults.plan import FaultInjected, FaultPlan, FaultSpec
from repro.parallel.viewsched import ViewScheduler
from repro.reconstruct import determine_structure
from repro.refine.refiner import OrientationRefiner

from tests.chaos.conftest import assert_identical

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def loop_setup(chaos_problem):
    """The chaos problem under a two-iteration process-backend loop config."""
    views, refiner, schedule = chaos_problem
    config = EngineConfig(
        schedule=ScheduleConfig.from_schedule(schedule),
        parallel=ParallelConfig(backend="process", n_workers=1),
        iteration=IterationConfig(max_iterations=2),
        max_slides=2,
    )
    return views, refiner.density, config


@pytest.fixture(scope="module")
def loop_baseline(loop_setup):
    """The fault-free loop outcome every killed-and-resumed run must match."""
    views, density, config = loop_setup
    result = determine_structure(views, density, config)
    assert len(result.history) == 2
    return result


def assert_same_history(result, expected):
    """Bit-identity of two loop outcomes, record by record."""
    assert result.stop_reason == expected.stop_reason
    assert len(result.history) == len(expected.history)
    for got, want in zip(result.history, expected.history):
        assert got.iteration == want.iteration
        assert got.r_max == want.r_max
        for a, b in zip(got.orientations, want.orientations):
            assert a.as_tuple() == b.as_tuple()
        assert got.resolution_angstrom == want.resolution_angstrom
        assert got.mean_distance == want.mean_distance
        assert np.array_equal(got.density.data, want.density.data)


def killed_loop(loop_setup, ckpt_dir, level_seq):
    """Run the checkpointed loop until an abort at ``level:<level_seq>``."""
    views, density, config = loop_setup
    killed_cfg = EngineConfig.from_dict(
        {**config.to_dict(), "checkpoint": {"path": ckpt_dir}}
    )
    plan = FaultPlan((FaultSpec("abort-level", f"level:{level_seq}"),))
    with pytest.raises(FaultInjected):
        determine_structure(views, density, killed_cfg, fault_plan=plan)


def resumed_loop(loop_setup, ckpt_dir):
    views, density, config = loop_setup
    resume_cfg = EngineConfig.from_dict(
        {**config.to_dict(), "checkpoint": {"path": ckpt_dir, "resume": True}}
    )
    return determine_structure(views, density, resume_cfg)


def test_resume_after_mid_iteration_abort_is_bit_identical(
    loop_setup, loop_baseline, tmp_path
):
    """Killed between iteration 1's levels: the loop checkpoint replays
    iteration 0, the inner checkpoint resumes iteration 1 mid-schedule."""
    ckpt_dir = str(tmp_path / "loop")
    killed_loop(loop_setup, ckpt_dir, level_seq=3)

    assert [e.iteration for e in load_loop_checkpoint(ckpt_dir).iterations] == [0]
    assert load_checkpoint(iteration_checkpoint_path(ckpt_dir, 1)).levels_done == 1

    resumed = resumed_loop(loop_setup, ckpt_dir)
    assert resumed.resumed_iterations == 1
    assert resumed.history[0].resumed and not resumed.history[1].resumed
    assert_same_history(resumed, loop_baseline)


def test_resume_at_iteration_boundary_is_bit_identical(
    loop_setup, loop_baseline, tmp_path
):
    """Killed before iteration 1 touched anything: no inner checkpoint
    exists (iteration 0's was unlinked on completion), so iteration 1
    reruns from the replayed state alone."""
    ckpt_dir = str(tmp_path / "loop")
    killed_loop(loop_setup, ckpt_dir, level_seq=2)

    assert [e.iteration for e in load_loop_checkpoint(ckpt_dir).iterations] == [0]
    assert not os.path.exists(iteration_checkpoint_path(ckpt_dir, 0))
    assert not os.path.exists(iteration_checkpoint_path(ckpt_dir, 1))

    resumed = resumed_loop(loop_setup, ckpt_dir)
    assert resumed.resumed_iterations == 1
    assert_same_history(resumed, loop_baseline)


def test_multi_basin_state_rides_the_checkpoint(chaos_problem, tmp_path):
    """Kill a multi-basin run (prune.top_k / polish.n_best > 1) at a level
    barrier and resume it: the basin centers serialized into the
    checkpoint header must re-seed the next level exactly as the dead run
    would have, so the resumed result is bit-identical.  This is the
    configuration the checkpoint machinery used to refuse outright."""
    views, refiner, schedule = chaos_problem
    config = EngineConfig.from_dict(
        {
            **refiner.config.to_dict(),
            "prune": {"enabled": True, "top_k": 2},
            "polish": {"enabled": True, "n_best": 2},
        }
    )
    baseline = OrientationRefiner(refiner.density, config=config).refine(
        views, schedule=schedule
    )

    ckpt = str(tmp_path / "run.ckpt")
    plan = FaultPlan((FaultSpec("abort-level", "level:1"),))
    scheduler = ViewScheduler(n_workers=1, fault_plan=plan)
    try:
        with pytest.raises(FaultInjected):
            OrientationRefiner(refiner.density, config=config).refine(
                views, schedule=schedule, scheduler=scheduler, checkpoint_path=ckpt
            )
    finally:
        scheduler.close()
    saved = load_checkpoint(ckpt)
    assert saved.levels_done == 1
    assert saved.basins is not None
    assert any(b is not None and len(b) > 1 for b in saved.basins)

    resumed = OrientationRefiner(refiner.density, config=config).refine(
        views, schedule=schedule, checkpoint_path=ckpt, resume=True
    )
    assert_identical(resumed, baseline)
    assert resumed.stats == baseline.stats
