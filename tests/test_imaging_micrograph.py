"""Tests for micrograph synthesis and particle picking (Step A substrate)."""

import numpy as np
import pytest

from repro.imaging import (
    extract_particles,
    pick_particles,
    synthesize_micrograph,
)


def test_synthesize_micrograph_basic(phantom16):
    mg = synthesize_micrograph(phantom16, shape=(128, 128), n_particles=6, snr=2.0, seed=0)
    assert mg.image.shape == (128, 128)
    assert len(mg.true_positions) == 6
    assert len(mg.true_orientations) == 6
    assert mg.box_size == 16


def test_particles_respect_separation(phantom16):
    mg = synthesize_micrograph(phantom16, shape=(160, 160), n_particles=8, seed=1)
    pos = mg.true_positions
    for i in range(len(pos)):
        for j in range(i + 1, len(pos)):
            d = np.hypot(pos[i][0] - pos[j][0], pos[i][1] - pos[j][1])
            assert d >= 16.0 - 1e-9


def test_synthesize_raises_when_too_crowded(phantom16):
    with pytest.raises(ValueError):
        synthesize_micrograph(phantom16, shape=(40, 40), n_particles=50, seed=0)


def test_synthesize_too_small_field(phantom16):
    with pytest.raises(ValueError):
        synthesize_micrograph(phantom16, shape=(10, 10), n_particles=1)


def test_pick_particles_recall(phantom16):
    mg = synthesize_micrograph(phantom16, shape=(160, 160), n_particles=6, snr=3.0, seed=2)
    picks = pick_particles(mg.image, box_size=16, n_expected=6)
    assert len(picks) == 6
    hits = 0
    for r, c in mg.true_positions:
        best = min(np.hypot(r - pr, c - pc) for pr, pc in picks)
        if best <= 4.0:
            hits += 1
    assert hits >= 5  # at least 5/6 recovered within 4 px


def test_extract_particles_shapes(phantom16):
    mg = synthesize_micrograph(phantom16, shape=(128, 128), n_particles=4, seed=3)
    stack = extract_particles(mg.image, mg.true_positions, box_size=16)
    assert stack.shape == (4, 16, 16)


def test_extract_particles_content_matches(phantom16):
    mg = synthesize_micrograph(phantom16, shape=(128, 128), n_particles=1, snr=np.inf, seed=4)
    stack = extract_particles(mg.image, mg.true_positions, box_size=16)
    from repro.imaging import project_map

    expected = project_map(phantom16, mg.true_orientations[0], method="real")
    assert np.allclose(stack[0], expected, atol=1e-9)


def test_extract_particles_edge_rejected(phantom16):
    img = np.zeros((64, 64))
    with pytest.raises(ValueError):
        extract_particles(img, [(2, 30)], box_size=16)


def test_micrograph_deterministic(phantom16):
    a = synthesize_micrograph(phantom16, n_particles=3, seed=9)
    b = synthesize_micrograph(phantom16, n_particles=3, seed=9)
    assert np.array_equal(a.image, b.image)
    assert a.true_positions == b.true_positions
