"""RL003 fixture: copy-happy astype and a raw float64 constructor in a hot path."""

from __future__ import annotations

import numpy as np


def widen(x):
    y = x.astype(np.complex128)
    return y * np.float64(2.0)
