"""Fitting full point groups to detected symmetry axes.

The axis scan in :mod:`repro.refine.symmetry_detect` finds individual
rotation axes; for the polyhedral groups (T, O, I) the full group can then
be *fitted*: pick a detected axis pair whose orders and mutual angle match
a canonical pair of the candidate group, construct the rotation that maps
the canonical frame onto the detected one, conjugate the whole canonical
group into that frame, and verify sampled elements against the map.  This
turns "found a 3-fold and some 2-folds" into a confident "the group is I".

All scoring goes through the detector's rotation-scorer callable, so the
fit works identically with the real-space and Fourier backends.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arraytypes import Array
from repro.geometry.rotations import axis_angle_to_matrix, matrix_to_axis_angle
from repro.geometry.symmetry import (
    SymmetryGroup,
    icosahedral_group,
    octahedral_group,
    tetrahedral_group,
)

__all__ = ["group_axes", "frame_from_axis_pair", "fit_polyhedral_group"]

RotationScorer = Callable[[Array], float]


def group_axes(group: SymmetryGroup) -> list[tuple[Array, int]]:
    """Distinct (axis, maximal order) pairs of a group (canonical signs)."""
    found: list[tuple[Array, int]] = []
    for g in group.matrices:
        axis, angle = matrix_to_axis_angle(g)
        if angle < 1e-6:
            continue
        order = int(round(360.0 / angle))
        if order < 2:
            continue
        for i in range(3):
            if abs(axis[i]) > 1e-9:
                if axis[i] < 0:
                    axis = -axis
                break
        hit = False
        for j, (a, o) in enumerate(found):
            if np.allclose(a, axis, atol=1e-6):
                found[j] = (a, max(o, order))
                hit = True
                break
        if not hit:
            found.append((axis, order))
    return found


def frame_from_axis_pair(
    canon_a: Array, canon_b: Array, det_a: Array, det_b: Array
) -> Array:
    """Rotation ``U`` mapping the canonical axis pair onto the detected one.

    ``U·canon_a = det_a`` exactly; ``canon_b`` is mapped as close to
    ``det_b`` as the (fixed) mutual angle allows.
    """

    def orthonormal_frame(a: Array, b: Array) -> Array:
        e1 = a / np.linalg.norm(a)
        b_perp = b - np.dot(b, e1) * e1
        n = np.linalg.norm(b_perp)
        if n < 1e-9:
            # degenerate (parallel axes): any perpendicular completes it
            helper = np.array([1.0, 0.0, 0.0]) if abs(e1[0]) < 0.9 else np.array([0.0, 1.0, 0.0])
            b_perp = helper - np.dot(helper, e1) * e1
            n = np.linalg.norm(b_perp)
        e2 = b_perp / n
        e3 = np.cross(e1, e2)
        return np.stack([e1, e2, e3], axis=1)

    fc = orthonormal_frame(np.asarray(canon_a, float), np.asarray(canon_b, float))
    fd = orthonormal_frame(np.asarray(det_a, float), np.asarray(det_b, float))
    return fd @ fc.T


def fit_polyhedral_group(
    scorer: RotationScorer,
    detected_axes: list[tuple[Array, int, float]],
    threshold: float,
    candidates: tuple[str, ...] = ("I", "O", "T"),
    n_verify: int = 12,
    angle_tol_deg: float = 6.0,
    max_attempts_per_group: int = 16,
) -> tuple[str, SymmetryGroup] | None:
    """Try to explain the detected axes as a full polyhedral group.

    For each candidate group (largest first), every detected axis pair with
    matching orders and mutual angle seeds a frame fit; a cheap 2-element
    screen rejects grossly wrong frames, survivors are polished
    (Nelder–Mead over a small frame correction) and accepted if
    ``n_verify`` sampled non-identity elements all score below
    ``threshold``.  Returns ``(name, group)`` or ``None``.

    Axis sign is ambiguous (an n-fold axis equals its negation), so both
    orientations of the second axis are tried.
    """
    builders = {"T": tetrahedral_group, "O": octahedral_group, "I": icosahedral_group}
    if len(detected_axes) < 2:
        return None
    # most-confident detected axes first (lower score = stronger evidence)
    ranked = sorted(detected_axes, key=lambda t: t[2])
    for name in candidates:
        canon = builders[name]()
        caxes = group_axes(canon)
        attempts = 0
        for i, (da, oa, _) in enumerate(ranked):
            for j, (db, ob, _) in enumerate(ranked):
                if i == j:
                    continue
                mutual = np.rad2deg(np.arccos(np.clip(abs(np.dot(da, db)), -1.0, 1.0)))
                for ca, coa in caxes:
                    if coa != oa:
                        continue
                    for cb, cob in caxes:
                        if cob != ob or np.allclose(ca, cb):
                            continue
                        cmutual = np.rad2deg(
                            np.arccos(np.clip(abs(np.dot(ca, cb)), -1.0, 1.0))
                        )
                        if abs(mutual - cmutual) > angle_tol_deg:
                            continue
                        for sign in (1.0, -1.0):
                            if attempts >= max_attempts_per_group:
                                break
                            attempts += 1
                            u = frame_from_axis_pair(ca, cb, da, sign * db)
                            fitted = np.einsum("ij,njk,lk->nil", u, canon.matrices, u)
                            # cheap screen before the expensive polish
                            if not _verify_group(scorer, fitted, 2.0 * threshold, 2):
                                continue
                            u = _polish_frame(scorer, u, canon.matrices)
                            fitted = np.einsum("ij,njk,lk->nil", u, canon.matrices, u)
                            if _verify_group(scorer, fitted, threshold, n_verify):
                                sub_worst = _worst_element_score(scorer, fitted, n_verify)
                                return _try_supergroups(
                                    scorer, name, u, threshold, n_verify, sub_worst
                                )
    return None


def _worst_element_score(
    scorer: RotationScorer, matrices: Array, n_verify: int
) -> float:
    order = matrices.shape[0]
    step = max(1, (order - 1) // n_verify)
    return max(scorer(matrices[idx]) for idx in range(1, order, step))


def _try_supergroups(
    scorer: RotationScorer,
    name: str,
    frame: Array,
    threshold: float,
    n_verify: int,
    subgroup_worst: float,
) -> tuple[str, SymmetryGroup]:
    """Upgrade a verified fit to a containing polyhedral group if possible.

    The canonical T, O and I groups here share the 222 coordinate frame
    (T ⊂ O and T ⊂ I with identical 2-fold axes), so a verified T fit can
    be promoted by testing O and I *in the same polished frame* — this
    rescues cases where the axis scan missed the higher-order axes (e.g.
    no 5-fold candidate survived the coarse grid).

    The upgrade bar is *adaptive*: the supergroup's extra elements must
    score comparably to the already-verified subgroup elements
    (``2×subgroup_worst``, floored at the detection threshold).  If the
    object truly has only the smaller symmetry, the extra elements score
    near the null — far above this bar — so genuine subgroup objects are
    never promoted.
    """
    builders = {"T": tetrahedral_group, "O": octahedral_group, "I": icosahedral_group}
    upgrades = {"T": ("I", "O"), "O": (), "I": ()}
    bar = max(2.0 * subgroup_worst, threshold)
    # A T frame is determined only up to T's normalizer in SO(3) (which is
    # O): the coset representative Rz(90) flips between the two inequivalent
    # embeddings of the supergroup, so both must be tried.
    coset_flip = axis_angle_to_matrix([0.0, 0.0, 1.0], 90.0)
    for bigger in upgrades.get(name, ()):
        canon_big = builders[bigger]()
        for base in (frame, frame @ coset_flip):
            u = _polish_frame(scorer, base, canon_big.matrices)
            fitted_big = np.einsum("ij,njk,lk->nil", u, canon_big.matrices, u)
            if _verify_group(scorer, fitted_big, bar, n_verify):
                return bigger, SymmetryGroup(bigger, fitted_big)
    fitted = np.einsum("ij,njk,lk->nil", frame, builders[name]().matrices, frame)
    return name, SymmetryGroup(name, fitted)


def _polish_frame(
    scorer: RotationScorer,
    u0: Array,
    canon_matrices: Array,
    n_elements: int = 4,
) -> Array:
    """Locally refine the frame rotation against a few group elements.

    The detected axes carry a degree or two of error; a Nelder–Mead search
    over a small rotation correction (axis-angle vector, radians) sharpens
    the frame before the full verification pass.
    """
    from scipy import optimize

    order = canon_matrices.shape[0]
    sample = canon_matrices[1 :: max(1, (order - 1) // n_elements)][:n_elements]

    def objective(v: Array) -> float:
        angle = np.linalg.norm(v)
        delta = np.eye(3) if angle < 1e-9 else axis_angle_to_matrix(v, np.rad2deg(angle))
        u = delta @ u0
        return float(np.mean([scorer(u @ g @ u.T) for g in sample]))

    res = optimize.minimize(
        objective, np.zeros(3), method="Nelder-Mead",
        options={"xatol": 5e-4, "fatol": 1e-12, "maxiter": 60},
    )
    angle = np.linalg.norm(res.x)
    if angle < 1e-9:
        return u0
    return axis_angle_to_matrix(res.x, np.rad2deg(angle)) @ u0


def _verify_group(
    scorer: RotationScorer, matrices: Array, threshold: float, n_verify: int
) -> bool:
    order = matrices.shape[0]
    if order <= 1:
        return False
    step = max(1, (order - 1) // n_verify)
    checked = 0
    for idx in range(1, order, step):
        if scorer(matrices[idx]) > threshold:
            return False
        checked += 1
        if checked >= n_verify:
            break
    return checked > 0
