"""Layered config resolution with per-field provenance.

A run's effective :class:`~repro.engine.config.EngineConfig` is built
from four layers, later layers winning::

    dataclass defaults  <  base overlay  <  config file  <  env  <  flags

The *base overlay* is a driver's own defaults (e.g. the CLI ships a
shorter demo schedule than the paper's production one) — still "defaults"
from the user's point of view, so they share that provenance label.  The
environment layer covers the historical ``REPRO_*`` variables (read via
:mod:`repro.engine.env`, nowhere else); the flag layer is whatever the
caller parsed from its command line.

:func:`resolve_config` returns a :class:`ResolvedConfig` carrying the
validated config *and* a dotted-path → source map, so ``refine
--dry-run`` can print every effective value annotated with where it came
from — the difference between "the config I wrote" and "the config that
ran" is exactly the class of silent mismatch this engine exists to kill.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.engine.config import ConfigError, EngineConfig, load_config
from repro.engine.env import GATHER_CHUNK_ENV, gather_chunk_override

__all__ = ["ResolvedConfig", "describe_environment", "resolve_config"]

#: Provenance labels, in layering order.
SOURCES = ("default", "file", "env", "flag")


def _flatten(data: Mapping[str, Any], prefix: str = "") -> dict[str, Any]:
    """Nested dict → dotted-leaf dict (lists are leaves, e.g. schedule.levels)."""
    out: dict[str, Any] = {}
    for key, value in data.items():
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(_flatten(value, f"{path}."))
        else:
            out[path] = value
    return out


def _set_dotted(tree: dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    node = tree
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            raise ConfigError(f"unknown config field {path!r}")
        node = nxt
    if parts[-1] not in node:
        raise ConfigError(f"unknown config field {path!r}")
    node[parts[-1]] = value


@dataclass(frozen=True)
class ResolvedConfig:
    """A validated config plus where every field's value came from."""

    config: EngineConfig
    #: dotted field path → one of :data:`SOURCES`
    provenance: dict[str, str]
    #: the config file that contributed the ``file`` layer, if any
    config_path: str | None = None

    def describe(self) -> str:
        """The full effective config, one annotated line per field.

        The layout is stable (tests and humans both read it)::

            kernel.kernel                  = 'batched'        [default]
            parallel.n_workers             = 4                [flag]
        """
        lines = [f"engine fingerprint: {self.config.fingerprint()}"]
        if self.config_path is not None:
            lines.append(f"config file: {self.config_path}")
        for path, value in self.config.flat_items():
            source = self.provenance.get(path, "default")
            lines.append(f"{path:<28} = {value!r:<24} [{source}]")
        return "\n".join(lines)


def resolve_config(
    config_path: str | Path | None = None,
    *,
    base: Mapping[str, Any] | None = None,
    flags: Mapping[str, Any] | None = None,
    use_env: bool = True,
) -> ResolvedConfig:
    """Resolve the effective config from all four layers.

    ``base`` and ``flags`` are flat dotted-path mappings (``{"kernel.kernel":
    "fused", "parallel.n_workers": 4}``); ``config_path`` is a ``.toml`` or
    ``.json`` file; ``use_env=False`` ignores the process environment (for
    hermetic tests).  Unknown paths and invalid values raise
    :class:`~repro.engine.config.ConfigError`.
    """
    tree = EngineConfig().to_dict()
    provenance = {path: "default" for path in _flatten(tree)}

    def apply(layer: Mapping[str, Any], source: str) -> None:
        for path, value in layer.items():
            _set_dotted(tree, path, value)
            provenance[path] = source

    if base:
        apply(base, "default")

    resolved_path: str | None = None
    if config_path is not None:
        # load_config validates the file end-to-end first, so a bad file
        # dies with its own path in the message before any merging
        load_config(config_path)
        p = Path(config_path)
        resolved_path = str(p)
        if p.suffix == ".toml":
            import tomllib

            file_data = tomllib.loads(p.read_text(encoding="utf-8"))
        else:
            import json

            file_data = json.loads(p.read_text(encoding="utf-8"))
        apply(_flatten(file_data), "file")

    if use_env:
        chunk = gather_chunk_override()
        if chunk is not None:
            apply({"kernel.gather_chunk": chunk}, "env")
            provenance["kernel.gather_chunk"] = "env"

    if flags:
        apply(flags, "flag")

    try:
        config = EngineConfig.from_dict(tree)
    except ConfigError:
        raise
    except ValueError as exc:  # pragma: no cover - defensive re-wrap
        raise ConfigError(str(exc)) from exc
    return ResolvedConfig(config=config, provenance=provenance, config_path=resolved_path)


def describe_environment() -> str:
    """One line per repro env var currently set (dry-run footer)."""
    from repro.engine.env import environment_overrides

    overrides = environment_overrides()
    if not overrides:
        return "environment: (no REPRO_* overrides set)"
    return "environment: " + ", ".join(
        f"{name}={value}" for name, value in sorted(overrides.items())
    )
