"""End-to-end integration tests across all subsystems.

These exercise the complete pipeline the way the examples do: phantom ->
views (+CTF/noise/shifts) -> refinement -> reconstruction -> resolution
assessment, plus the micrograph path and the figure-experiment protocol.
"""

import numpy as np
import pytest

from repro import (
    CTFParams,
    OrientationRefiner,
    Orientation,
    correlation_curve,
    reconstruct_from_views,
    simulate_views,
)
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.stats import angular_errors
from repro.utils import default_rng


@pytest.fixture(scope="module")
def sched():
    return MultiResolutionSchedule(
        (RefinementLevel(1.0, 1.0, half_steps=3), RefinementLevel(0.5, 0.5, half_steps=2))
    )


def test_full_cycle_improves_map(phantom24, sched):
    """Refine perturbed orientations against the truth map, reconstruct,
    and verify the map beats the perturbed-orientation reconstruction."""
    views = simulate_views(
        phantom24, 24, snr=4.0, center_sigma_px=0.5, initial_angle_error_deg=3.0, seed=0
    )
    refiner = OrientationRefiner(phantom24, r_max=9, max_slides=2)
    result = refiner.refine(views, schedule=sched)
    rec_initial = reconstruct_from_views(views.images, views.initial_orientations)
    rec_refined = reconstruct_from_views(views.images, result.orientations)
    cc_initial = rec_initial.normalized().correlation(phantom24)
    cc_refined = rec_refined.normalized().correlation(phantom24)
    assert cc_refined > cc_initial


def test_blind_protocol_improves_consistency(phantom24):
    """The honest protocol: refine against a map reconstructed from the
    *wrong* orientations (never the truth) and check the odd/even curve
    improves — the Figure 5/6 mechanism end to end."""
    from repro.pipeline.experiments import refine_from_old_orientations
    from repro.pipeline.config import ExperimentConfig, MiniWorkload

    views = simulate_views(phantom24, 40, snr=4.0, seed=1)
    rng = default_rng(7)
    old = [
        Orientation(
            o.theta + rng.normal(0, 3.0),
            o.phi + rng.normal(0, 3.0),
            o.omega + rng.normal(0, 3.0),
        )
        for o in views.true_orientations
    ]
    cfg = ExperimentConfig(
        workload=MiniWorkload("t", "asymmetric", size=24),
        r_max_sequence=(6.0, 8.0),
        n_iterations=2,
        max_slides=2,
    )
    from repro.refine.multires import MultiResolutionSchedule, RefinementLevel

    fast_sched = MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=2),))
    new, _ = refine_from_old_orientations(views, old, cfg, schedule=fast_sched)
    e_old = angular_errors(old, views.true_orientations).mean()
    e_new = angular_errors(new, views.true_orientations).mean()
    assert e_new < e_old + 0.5  # never seeing the truth, must not diverge
    c_old = correlation_curve(views.images, old)
    c_new = correlation_curve(views.images, new)
    mid = slice(2, 8)
    assert c_new.cc[mid].mean() >= c_old.cc[mid].mean() - 0.02


def test_micrograph_to_orientations(phantom24, sched):
    """Step A -> Step B: pick particles from a synthetic micrograph, box
    them, and refine their orientations starting from coarse estimates."""
    from repro.imaging import extract_particles, pick_particles, synthesize_micrograph

    mg = synthesize_micrograph(phantom24, shape=(160, 160), n_particles=4, snr=4.0, seed=2)
    picks = pick_particles(mg.image, box_size=24, n_expected=4)
    stack = extract_particles(mg.image, picks, box_size=24)
    # map picks to ground truth order by nearest position
    order = []
    for r, c in picks:
        d = [np.hypot(r - tr, c - tc) for tr, tc in mg.true_positions]
        order.append(int(np.argmin(d)))
    rng = default_rng(3)
    init = [
        Orientation(
            mg.true_orientations[i].theta + rng.normal(0, 2.0),
            mg.true_orientations[i].phi + rng.normal(0, 2.0),
            mg.true_orientations[i].omega + rng.normal(0, 2.0),
        )
        for i in order
    ]
    refiner = OrientationRefiner(phantom24, r_max=8, max_slides=2)
    result = refiner.refine(stack, initial_orientations=init, schedule=sched)
    truth = [mg.true_orientations[i] for i in order]
    errs = angular_errors(result.orientations, truth)
    errs0 = angular_errors(init, truth)
    assert errs.mean() < errs0.mean() + 1.0  # boxing errors limit but no divergence


def test_ctf_pipeline_end_to_end(sched):
    from repro.density import asymmetric_phantom
    from repro.density.map import DensityMap

    density = DensityMap(asymmetric_phantom(24, seed=5).normalized().data, apix=2.5)
    ctf = CTFParams(defocus_angstrom=9000.0)
    views = simulate_views(
        density, 16, snr=5.0, ctf=ctf, initial_angle_error_deg=3.0, seed=4
    )
    refiner = OrientationRefiner(density, r_max=8, max_slides=2)
    result = refiner.refine(views, schedule=sched)
    errs = angular_errors(result.orientations, views.true_orientations)
    errs0 = angular_errors(views.initial_orientations, views.true_orientations)
    assert errs.mean() < errs0.mean()
    rec = reconstruct_from_views(
        views.images, result.orientations, apix=2.5, ctf_params=views.ctf_params
    )
    assert rec.normalized().correlation(density) > 0.5


def test_mrc_roundtrip_through_pipeline(tmp_path, phantom24):
    """Maps and view stacks survive the MRC layer bit-for-bit enough to
    reproduce identical refinement results."""
    from repro.density import DensityMap, read_mrc, write_mrc

    views = simulate_views(phantom24, 3, initial_angle_error_deg=2.0, seed=6)
    map_path = str(tmp_path / "map.mrc")
    stack_path = str(tmp_path / "stack.mrc")
    write_mrc(map_path, phantom24.data, apix=phantom24.apix)
    write_mrc(stack_path, views.images, apix=phantom24.apix)
    data, apix = read_mrc(map_path)
    stack, _ = read_mrc(stack_path)
    density2 = DensityMap(data, apix)
    sched = MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=1),))
    r1 = OrientationRefiner(phantom24, r_max=8).refine(views, schedule=sched)
    r2 = OrientationRefiner(density2, r_max=8).refine(
        stack, initial_orientations=views.initial_orientations, schedule=sched
    )
    for a, b in zip(r1.orientations, r2.orientations):
        assert a.as_tuple() == pytest.approx(b.as_tuple(), abs=1e-3)
