"""The weak-phase contrast transfer function.

Standard single-particle model:

    CTF(s) = -( sqrt(1 − A²)·sin χ(s) + A·cos χ(s) ) · E(s)
    χ(s)   = π·λ·Δf·s² − (π/2)·Cs·λ³·s⁴
    E(s)   = exp(−B·s² / 4)

with ``s`` spatial frequency (1/Å), ``Δf`` defocus (Å, positive =
underfocus), ``Cs`` spherical aberration (Å), ``A`` the amplitude-contrast
fraction and ``B`` an envelope B-factor (Å²).  Electron wavelength λ comes
from the relativistic accelerating-voltage formula.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fourier.transforms import fourier_center

__all__ = [
    "CTFParams",
    "defocus_group_params",
    "electron_wavelength",
    "ctf_1d",
    "ctf_2d",
]


def electron_wavelength(voltage_kv: float) -> float:
    """Relativistic electron wavelength in Å for a voltage in kV.

    λ = 12.2639 / sqrt(V + 0.97845e-6 · V²), V in volts.
    """
    if voltage_kv <= 0:
        raise ValueError("voltage must be positive")
    v = voltage_kv * 1e3
    return 12.2639 / np.sqrt(v + 0.97845e-6 * v * v)


@dataclass(frozen=True)
class CTFParams:
    """Microscope/imaging parameters of one micrograph.

    Attributes
    ----------
    defocus_angstrom:
        Underfocus in Å (positive; typical cryo values 10000–30000).
    voltage_kv:
        Accelerating voltage in kV.
    cs_mm:
        Spherical aberration in mm.
    amplitude_contrast:
        Fraction in [0, 1) (typically 0.07–0.1 for cryo).
    bfactor:
        Envelope B-factor in Å² (0 disables the envelope).
    """

    defocus_angstrom: float = 15000.0
    voltage_kv: float = 300.0
    cs_mm: float = 2.0
    amplitude_contrast: float = 0.07
    bfactor: float = 0.0

    def __post_init__(self) -> None:
        if self.defocus_angstrom < 0:
            raise ValueError("defocus must be non-negative (underfocus convention)")
        if not 0 <= self.amplitude_contrast < 1:
            raise ValueError("amplitude_contrast must be in [0, 1)")
        if self.voltage_kv <= 0:
            raise ValueError("voltage must be positive")
        if self.bfactor < 0:
            raise ValueError("bfactor must be non-negative")

    @property
    def wavelength(self) -> float:
        return electron_wavelength(self.voltage_kv)


def defocus_group_params(
    defoci_angstrom: tuple[float, ...] | list[float],
    n_views: int,
    **kwargs: float,
) -> list[CTFParams]:
    """Per-view CTF parameters for a dataset split into defocus groups.

    Views from the same micrograph share one defocus (§3); a multi-
    micrograph dataset is modelled as ``len(defoci_angstrom)`` groups with
    views dealt round-robin — view ``i`` gets ``defoci_angstrom[i % g]``.
    Extra keyword arguments are forwarded to every :class:`CTFParams`
    (voltage, Cs, amplitude contrast, B-factor).
    """
    defoci = tuple(float(d) for d in defoci_angstrom)
    if not defoci:
        raise ValueError("need at least one defocus group")
    if n_views < 1:
        raise ValueError("n_views must be >= 1")
    groups = [CTFParams(defocus_angstrom=d, **kwargs) for d in defoci]
    return [groups[i % len(groups)] for i in range(n_views)]


def ctf_1d(params: CTFParams, s: np.ndarray) -> np.ndarray:
    """Evaluate the CTF at spatial frequencies ``s`` (1/Å)."""
    s = np.asarray(s, dtype=float)
    lam = params.wavelength
    cs = params.cs_mm * 1e7  # mm → Å
    chi = np.pi * lam * params.defocus_angstrom * s**2 - 0.5 * np.pi * cs * lam**3 * s**4
    a = params.amplitude_contrast
    ctf = -(np.sqrt(1.0 - a * a) * np.sin(chi) + a * np.cos(chi))
    if params.bfactor > 0:
        ctf = ctf * np.exp(-params.bfactor * s**2 / 4.0)
    return ctf


def ctf_2d(params: CTFParams, size: int, apix: float) -> np.ndarray:
    """The CTF sampled on the centered ``size×size`` Fourier grid.

    Returned array multiplies a centered 2D DFT elementwise (no astigmatism;
    the paper's views are CTF-corrected per micrograph with a single
    defocus).
    """
    if size <= 0 or apix <= 0:
        raise ValueError("size and apix must be positive")
    c = fourier_center(size)
    k = np.arange(size) - c
    ky, kx = np.meshgrid(k, k, indexing="ij")
    s = np.sqrt(kx * kx + ky * ky) / (size * apix)
    return ctf_1d(params, s)
